"""Lint rules for the determinism/correctness linter.

Each rule inspects one parsed module and yields raw findings.  Rules are
registered in :data:`RULES` via the :func:`register` decorator, so
downstream code (and tests) can add project-specific rules without
touching the engine:

.. code-block:: python

    @register
    class NoPrintRule(Rule):
        id = "RPR900"
        slug = "no-print"
        rationale = "use logging"

        def check(self, tree, ctx):
            ...

A rule may restrict itself to parts of the tree (``default_scopes``) —
path fragments matched against the file's posix path.  ``None`` means
the rule applies everywhere.  The caller can override scopes and
whitelists through :class:`repro.check.lint.LintConfig`.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass
from typing import Iterable, Iterator

#: numpy.random attributes that are part of the *seeded Generator* API
#: and therefore allowed everywhere.
ALLOWED_NP_RANDOM = frozenset({
    "default_rng", "Generator", "BitGenerator", "SeedSequence",
    "PCG64", "PCG64DXSM", "Philox", "SFC64", "MT19937",
})

#: stdlib ``random`` module functions that mutate/read the hidden
#: global RNG state.  ``random.Random`` (an explicit instance) is fine.
GLOBAL_STDLIB_RANDOM = frozenset({
    "random", "randint", "randrange", "choice", "choices", "shuffle",
    "sample", "uniform", "triangular", "gauss", "normalvariate",
    "lognormvariate", "expovariate", "betavariate", "paretovariate",
    "vonmisesvariate", "weibullvariate", "seed", "getrandbits",
    "getstate", "setstate", "binomialvariate",
})

#: wall-clock reads.  ``time.perf_counter``/``monotonic`` are fine:
#: they cannot leak the date into simulation state.
WALL_CLOCK_TIME_ATTRS = frozenset({"time", "time_ns"})
WALL_CLOCK_DATETIME_ATTRS = frozenset({"now", "utcnow", "today"})

_TIME_NAME = re.compile(
    r"(^|_)(time|now|clock|timestamp|makespan|deadline|walltime)s?(_|$)",
    re.IGNORECASE,
)

MUTABLE_CTORS = frozenset({"list", "dict", "set", "defaultdict", "OrderedDict"})


@dataclass(frozen=True)
class Finding:
    """One raw rule hit inside a single file."""

    line: int
    col: int
    message: str


class Imports:
    """Module-alias tables built from a module's import statements."""

    def __init__(self, tree: ast.Module) -> None:
        self.numpy: set[str] = set()          # `import numpy as np`
        self.numpy_random: set[str] = set()   # `from numpy import random`
        self.stdlib_random: set[str] = set()  # `import random`
        self.time: set[str] = set()           # `import time`
        self.datetime_mod: set[str] = set()   # `import datetime`
        self.datetime_cls: set[str] = set()   # `from datetime import datetime/date`
        self.banned_rng_names: set[str] = set()    # `from random import choice`
        self.banned_clock_names: set[str] = set()  # `from time import time`
        self.unseeded_ctor_names: set[str] = set() # `from numpy.random import default_rng`
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    bound = alias.asname or alias.name.split(".")[0]
                    if alias.name == "numpy":
                        self.numpy.add(bound)
                    elif alias.name == "numpy.random":
                        if alias.asname:
                            self.numpy_random.add(alias.asname)
                        else:
                            self.numpy.add("numpy")
                    elif alias.name == "random":
                        self.stdlib_random.add(bound)
                    elif alias.name == "time":
                        self.time.add(bound)
                    elif alias.name == "datetime":
                        self.datetime_mod.add(bound)
            elif isinstance(node, ast.ImportFrom) and node.level == 0:
                for alias in node.names:
                    bound = alias.asname or alias.name
                    if node.module == "numpy" and alias.name == "random":
                        self.numpy_random.add(bound)
                    elif node.module == "numpy.random":
                        if alias.name == "default_rng":
                            self.unseeded_ctor_names.add(bound)
                        elif alias.name not in ALLOWED_NP_RANDOM:
                            self.banned_rng_names.add(bound)
                    elif node.module == "random":
                        if alias.name in GLOBAL_STDLIB_RANDOM:
                            self.banned_rng_names.add(bound)
                    elif node.module == "time":
                        if alias.name in WALL_CLOCK_TIME_ATTRS:
                            self.banned_clock_names.add(bound)
                    elif node.module == "datetime":
                        if alias.name in ("datetime", "date"):
                            self.datetime_cls.add(bound)

    def is_numpy_random(self, node: ast.expr) -> bool:
        """Does ``node`` evaluate to the ``numpy.random`` module?"""
        if isinstance(node, ast.Name):
            return node.id in self.numpy_random
        if isinstance(node, ast.Attribute) and node.attr == "random":
            return isinstance(node.value, ast.Name) and node.value.id in self.numpy
        return False


class Rule:
    """Base class: subclass, set the metadata, implement :meth:`check`."""

    id: str = ""
    slug: str = ""
    rationale: str = ""
    #: path fragments this rule is restricted to by default (None = all)
    default_scopes: tuple[str, ...] | None = None

    def check(self, tree: ast.Module, ctx: "FileContext") -> Iterator[Finding]:
        """Yield findings for one parsed file."""
        raise NotImplementedError


class FileContext:
    """Per-file information handed to every rule."""

    def __init__(self, path: str, source: str, tree: ast.Module) -> None:
        self.path = path.replace("\\", "/")
        self.source = source
        self.tree = tree
        self.imports = Imports(tree)

    def path_matches(self, fragments: Iterable[str]) -> bool:
        """True when this file's path contains any of ``fragments``."""
        for fragment in fragments:
            if self.path.endswith(fragment) or f"/{fragment}" in f"/{self.path}":
                return True
        return False


RULES: dict[str, Rule] = {}


def register(cls: type[Rule]) -> type[Rule]:
    """Class decorator adding a rule instance to the global registry."""
    rule = cls()
    if not rule.id or not rule.slug:
        raise ValueError(f"rule {cls.__name__} must define id and slug")
    if rule.slug in RULES or any(r.id == rule.id for r in RULES.values()):
        raise ValueError(f"duplicate rule {rule.id}/{rule.slug}")
    RULES[rule.slug] = rule
    return cls


@register
class GlobalRngRule(Rule):
    """Global RNG state breaks seed isolation between components."""

    id = "RPR101"
    slug = "global-rng"
    rationale = (
        "calls through numpy's or the stdlib's hidden global RNG make run "
        "order affect results; thread a seeded Generator/Random instead"
    )
    default_scopes = ("sim/", "core/", "schedulers/", "workload/", "rl/", "nn/")

    def check(self, tree: ast.Module, ctx: FileContext) -> Iterator[Finding]:
        """Flag numpy global-RNG calls on the legacy interface."""
        imp = ctx.imports
        for node in ast.walk(tree):
            if isinstance(node, ast.Attribute):
                if imp.is_numpy_random(node.value) and node.attr not in ALLOWED_NP_RANDOM:
                    yield Finding(
                        node.lineno, node.col_offset,
                        f"global numpy RNG call np.random.{node.attr}; "
                        "thread a seeded np.random.Generator instead",
                    )
                elif (
                    isinstance(node.value, ast.Name)
                    and node.value.id in imp.stdlib_random
                    and node.attr in GLOBAL_STDLIB_RANDOM
                ):
                    yield Finding(
                        node.lineno, node.col_offset,
                        f"global stdlib RNG call random.{node.attr}; "
                        "use an explicit random.Random(seed) instance",
                    )
            elif isinstance(node, ast.Name) and isinstance(node.ctx, ast.Load):
                if node.id in imp.banned_rng_names:
                    yield Finding(
                        node.lineno, node.col_offset,
                        f"global RNG function {node.id!r} imported at module "
                        "level; thread a seeded generator instead",
                    )


@register
class UnseededRngRule(Rule):
    """``default_rng()`` with no seed pulls OS entropy — irreproducible."""

    id = "RPR102"
    slug = "unseeded-rng"
    rationale = (
        "np.random.default_rng() without a seed draws OS entropy, so two "
        "identical runs diverge; require an explicit seed or Generator"
    )
    default_scopes = None

    def check(self, tree: ast.Module, ctx: FileContext) -> Iterator[Finding]:
        """Flag default_rng()/seed-less RNG construction."""
        imp = ctx.imports
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call) or node.args or node.keywords:
                continue
            fn = node.func
            unseeded = (
                isinstance(fn, ast.Attribute)
                and fn.attr == "default_rng"
                and imp.is_numpy_random(fn.value)
            ) or (isinstance(fn, ast.Name) and fn.id in imp.unseeded_ctor_names)
            if unseeded:
                yield Finding(
                    node.lineno, node.col_offset,
                    "default_rng() without a seed is non-deterministic; pass "
                    "an explicit seed or accept a Generator from the caller",
                )


@register
class WallClockRule(Rule):
    """Wall-clock reads leak host time into simulation state."""

    id = "RPR103"
    slug = "wall-clock"
    rationale = (
        "time.time()/datetime.now() make behaviour depend on when the run "
        "happens; use the engine clock or time.perf_counter() for durations"
    )
    default_scopes = None

    def check(self, tree: ast.Module, ctx: FileContext) -> Iterator[Finding]:
        """Flag wall-clock reads inside simulation/NN code."""
        imp = ctx.imports
        for node in ast.walk(tree):
            if isinstance(node, ast.Attribute):
                base = node.value
                if (
                    isinstance(base, ast.Name)
                    and base.id in imp.time
                    and node.attr in WALL_CLOCK_TIME_ATTRS
                ):
                    yield Finding(
                        node.lineno, node.col_offset,
                        f"wall-clock read time.{node.attr}; use the engine "
                        "clock for simulation time or time.perf_counter() "
                        "for durations",
                    )
                elif node.attr in WALL_CLOCK_DATETIME_ATTRS and (
                    (isinstance(base, ast.Name)
                     and (base.id in imp.datetime_mod or base.id in imp.datetime_cls))
                    or (isinstance(base, ast.Attribute)
                        and base.attr in ("datetime", "date")
                        and isinstance(base.value, ast.Name)
                        and base.value.id in imp.datetime_mod)
                ):
                    yield Finding(
                        node.lineno, node.col_offset,
                        f"wall-clock read datetime …{node.attr}(); "
                        "simulation code must not observe the host date",
                    )
            elif isinstance(node, ast.Name) and isinstance(node.ctx, ast.Load):
                if node.id in imp.banned_clock_names:
                    yield Finding(
                        node.lineno, node.col_offset,
                        f"wall-clock function {node.id!r} imported from time; "
                        "use time.perf_counter() for durations",
                    )


@register
class MutableDefaultRule(Rule):
    """Mutable default arguments persist state across calls."""

    id = "RPR104"
    slug = "mutable-default"
    rationale = (
        "a list/dict/set default is created once and shared by every call, "
        "silently carrying state between episodes; default to None instead"
    )
    default_scopes = None

    def check(self, tree: ast.Module, ctx: FileContext) -> Iterator[Finding]:
        """Flag mutable default argument values."""
        for node in ast.walk(tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
                continue
            defaults = list(node.args.defaults)
            defaults += [d for d in node.args.kw_defaults if d is not None]
            for default in defaults:
                if isinstance(default, (ast.List, ast.Dict, ast.Set,
                                        ast.ListComp, ast.DictComp, ast.SetComp)):
                    bad = True
                elif isinstance(default, ast.Call):
                    fn = default.func
                    bad = isinstance(fn, ast.Name) and fn.id in MUTABLE_CTORS
                else:
                    bad = False
                if bad:
                    yield Finding(
                        default.lineno, default.col_offset,
                        "mutable default argument is shared across calls; "
                        "use None and construct inside the function",
                    )


@register
class FloatTimeEqRule(Rule):
    """Exact float equality on timestamps is representation-fragile."""

    id = "RPR105"
    slug = "float-time-eq"
    rationale = (
        "== / != on float simulation timestamps depends on bit-exact "
        "arithmetic history; compare with a tolerance or ordering instead "
        "(suppress where both sides are copies of the same stored value)"
    )
    default_scopes = None

    #: calls whose result is integral, not a float timestamp
    _INT_FUNCS = frozenset({"len", "int", "round", "id", "hash", "ord"})

    @classmethod
    def _time_like(cls, node: ast.expr) -> bool:
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id in cls._INT_FUNCS
        ):
            return False
        for sub in ast.walk(node):
            name = None
            if isinstance(sub, ast.Name):
                name = sub.id
            elif isinstance(sub, ast.Attribute):
                name = sub.attr
            if name is not None and _TIME_NAME.search(name):
                return True
        return False

    def check(self, tree: ast.Module, ctx: FileContext) -> Iterator[Finding]:
        """Flag exact float equality on time-like operands."""
        for node in ast.walk(tree):
            if not isinstance(node, ast.Compare):
                continue
            operands = [node.left] + list(node.comparators)
            for op, left, right in zip(node.ops, operands, operands[1:]):
                if not isinstance(op, (ast.Eq, ast.NotEq)):
                    continue
                # `x is None`-style constant comparisons are not float math
                if any(isinstance(o, ast.Constant) and o.value is None
                       for o in (left, right)):
                    continue
                if self._time_like(left) or self._time_like(right):
                    yield Finding(
                        node.lineno, node.col_offset,
                        "exact ==/!= on a simulation timestamp; use ordering "
                        "or math.isclose, or suppress if both sides are "
                        "copies of one stored value",
                    )
                    break


@register
class BareExceptRule(Rule):
    """Bare/swallowed exceptions hide engine-loop corruption."""

    id = "RPR106"
    slug = "bare-except"
    rationale = (
        "`except:` and `except Exception: pass` silently absorb invariant "
        "violations mid-simulation, turning crashes into corrupt results"
    )
    default_scopes = None

    def check(self, tree: ast.Module, ctx: FileContext) -> Iterator[Finding]:
        """Flag bare/overbroad except handlers that swallow errors."""
        for node in ast.walk(tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if node.type is None:
                yield Finding(
                    node.lineno, node.col_offset,
                    "bare `except:` catches SystemExit/KeyboardInterrupt too; "
                    "name the exception types",
                )
                continue
            broad = isinstance(node.type, ast.Name) and node.type.id in (
                "Exception", "BaseException",
            )
            swallowed = all(
                isinstance(stmt, ast.Pass)
                or (isinstance(stmt, ast.Expr)
                    and isinstance(stmt.value, ast.Constant)
                    and stmt.value.value is Ellipsis)
                for stmt in node.body
            )
            if broad and swallowed:
                yield Finding(
                    node.lineno, node.col_offset,
                    "broad exception swallowed with `pass`; at minimum log "
                    "or re-raise so simulation corruption cannot go unseen",
                )
