"""Trace statistics and workload-model fitting.

The paper calibrates its synthetic jobsets to the target system's
patterns — hourly and daily arrivals, and the distributions of job
sizes and runtimes (Fig 3).  This module computes those statistics from
any trace and, through :func:`fit_model`, estimates a complete
:class:`~repro.workload.models.WorkloadModel` from it, so the
three-phase curriculum can be built directly from a site's own SWF log.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.sim.job import Job
from repro.workload.generator import (
    CategoricalSizes,
    DiurnalArrivals,
    LognormalRuntimes,
)
from repro.workload.models import WorkloadModel
from repro.workload.units import SECONDS_PER_DAY as _DAY
from repro.workload.units import SECONDS_PER_HOUR as _HOUR


@dataclass(frozen=True)
class TraceStats:
    """Summary statistics of one trace."""

    num_jobs: int
    span_seconds: float
    arrival_rate: float                 #: jobs per second
    hourly_profile: tuple[float, ...]   #: 24 relative weights, mean 1
    daily_profile: tuple[float, ...]    #: 7 relative weights, mean 1
    size_mix: dict[int, float]          #: node count -> probability
    runtime_median: float
    runtime_log_sigma: float
    max_runtime: float
    mean_overestimate: float            #: mean of walltime/runtime - 1
    dependency_prob: float
    offered_load_per_node: float        #: node-seconds demanded per node-second


def analyze_trace(jobs: list[Job], num_nodes: int | None = None) -> TraceStats:
    """Compute :class:`TraceStats` for a trace.

    ``num_nodes`` is needed for the offered load; when omitted, the
    largest job size is used as a lower bound for the system size.
    """
    if len(jobs) < 2:
        raise ValueError("need at least two jobs to analyze a trace")
    submits = np.array([j.submit_time for j in jobs])
    sizes = np.array([j.size for j in jobs])
    runtimes = np.array([j.runtime for j in jobs])
    walltimes = np.array([j.walltime for j in jobs])

    span = float(submits.max() - submits.min())
    if span <= 0:
        raise ValueError("trace has zero time span")
    if num_nodes is None:
        num_nodes = int(sizes.max())

    hours = ((submits % _DAY) // _HOUR).astype(int)
    days = ((submits // _DAY) % 7).astype(int)
    hourly = np.bincount(hours, minlength=24).astype(np.float64)
    daily = np.bincount(days, minlength=7).astype(np.float64)
    # guard all-zero slots, then normalize to mean 1
    hourly = np.maximum(hourly, 1e-9)
    daily = np.maximum(daily, 1e-9)
    hourly /= hourly.mean()
    daily /= daily.mean()

    unique, counts = np.unique(sizes, return_counts=True)
    size_mix = {int(s): float(c) / len(jobs) for s, c in zip(unique, counts)}

    log_rt = np.log(runtimes)
    over = walltimes / runtimes - 1.0
    deps = sum(1 for j in jobs if j.dependencies)

    return TraceStats(
        num_jobs=len(jobs),
        span_seconds=span,
        arrival_rate=(len(jobs) - 1) / span,
        hourly_profile=tuple(float(h) for h in hourly),
        daily_profile=tuple(float(d) for d in daily),
        size_mix=size_mix,
        runtime_median=float(np.exp(np.median(log_rt))),
        runtime_log_sigma=float(log_rt.std()),
        max_runtime=float(runtimes.max()),
        mean_overestimate=float(np.mean(over)),
        dependency_prob=deps / len(jobs),
        offered_load_per_node=float(np.sum(sizes * runtimes))
        / (num_nodes * span),
    )


def fit_model(
    jobs: list[Job],
    num_nodes: int,
    name: str = "fitted",
    max_size_categories: int = 32,
) -> WorkloadModel:
    """Estimate a :class:`WorkloadModel` from a trace.

    The empirical size histogram is truncated to its
    ``max_size_categories`` most frequent sizes (re-normalized); the
    runtime distribution is a lognormal fit with the trace's cap; the
    arrival process keeps the trace's hour-of-day and day-of-week
    shape and its average rate.
    """
    stats = analyze_trace(jobs, num_nodes)
    top = sorted(stats.size_mix.items(), key=lambda kv: -kv[1])[:max_size_categories]
    sizes = CategoricalSizes.from_dict(dict(top))
    runtimes = LognormalRuntimes(
        median=stats.runtime_median,
        sigma=max(stats.runtime_log_sigma, 0.05),
        max_runtime=stats.max_runtime,
        min_runtime=max(1.0, min(j.runtime for j in jobs)),
        mean_overestimate=max(stats.mean_overestimate, 0.0),
    )
    arrivals = DiurnalArrivals(
        base_rate=stats.arrival_rate,
        hourly=stats.hourly_profile,
        daily=stats.daily_profile,
    )
    return WorkloadModel(
        name=name,
        num_nodes=num_nodes,
        arrivals=arrivals,
        sizes=sizes,
        runtimes=runtimes,
        priority_threshold=max(1, num_nodes // 8),
        dependency_prob=min(1.0, stats.dependency_prob),
    )


def size_category_shares(
    jobs: list[Job], bounds: list[tuple[int, int]]
) -> tuple[list[float], list[float]]:
    """Job-count and core-hour shares per ``(lo, hi)`` size category.

    Jobs above the last bound fold into the final category (Fig 2).
    """
    if not bounds:
        raise ValueError("at least one size category is required")
    counts = [0] * len(bounds)
    hours = [0.0] * len(bounds)
    for job in jobs:
        for i, (lo, hi) in enumerate(bounds):
            last = i == len(bounds) - 1
            if lo <= job.size <= hi or (last and job.size > hi):
                counts[i] += 1
                hours[i] += job.core_hours
                break
    total_jobs = max(1, sum(counts))
    total_hours = max(1e-12, sum(hours))
    return (
        [c / total_jobs for c in counts],
        [h / total_hours for h in hours],
    )
