"""Lightweight always-on metrics: counters, gauges, EMA wall-clock timers.

A :class:`MetricsRegistry` is a flat namespace of named instruments.
Instruments are plain Python objects with ``__slots__`` and integer /
float arithmetic only — cheap enough to leave enabled permanently in
the simulator hot loop (the engine-throughput benchmark in
``BENCH_sim.json`` measures them as part of the baseline).

Instruments never feed back into simulation state; they are
observe-only, so runs with and without consumers reading them are
bit-identical.

Usage::

    registry = MetricsRegistry()
    registry.counter("jobs.started").inc()
    registry.gauge("queue.depth").set(17)
    with registry.timer("schedule_s").time():
        policy.schedule(view)
    registry.snapshot()   # plain-dict summary of every instrument

:class:`~repro.sim.engine.Engine`, :class:`~repro.rl.trainer.Trainer`
and every scheduler deriving from
:class:`~repro.schedulers.base.BaseScheduler` expose a registry as
``.metrics``.
"""

from __future__ import annotations

import time
from typing import Any


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def inc(self, n: int = 1) -> None:
        """Add ``n`` (default 1) to the count."""
        self.value += n

    def reset(self) -> None:
        """Zero the count (fresh-run semantics; the name stays bound)."""
        self.value = 0


class Gauge:
    """A value that goes up and down, remembering its extremes."""

    __slots__ = ("value", "min", "max", "samples")

    def __init__(self) -> None:
        self.value = 0.0
        self.min = float("inf")
        self.max = float("-inf")
        self.samples = 0

    def set(self, value: float) -> None:
        """Record the current value of the tracked quantity."""
        self.value = value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        self.samples += 1

    def reset(self) -> None:
        """Forget every sample and the tracked extremes."""
        self.value = 0.0
        self.min = float("inf")
        self.max = float("-inf")
        self.samples = 0


class Timer:
    """Accumulates wall-clock durations with an exponential moving average.

    Durations come from ``time.perf_counter()`` (monotonic, never the
    host date).  ``ema`` smooths with factor ``ema_alpha`` — the first
    observation seeds it, after which
    ``ema = alpha * sample + (1 - alpha) * ema``.
    """

    __slots__ = ("count", "total", "last", "ema", "ema_alpha")

    def __init__(self, ema_alpha: float = 0.2) -> None:
        if not 0.0 < ema_alpha <= 1.0:
            raise ValueError("ema_alpha must be in (0, 1]")
        self.count = 0
        self.total = 0.0
        self.last = 0.0
        self.ema = 0.0
        self.ema_alpha = ema_alpha

    def observe(self, seconds: float) -> None:
        """Record one duration sample (in seconds)."""
        self.count += 1
        self.total += seconds
        self.last = seconds
        if self.count == 1:
            self.ema = seconds
        else:
            self.ema += self.ema_alpha * (seconds - self.ema)

    @property
    def mean(self) -> float:
        """Arithmetic mean of all observed durations."""
        return self.total / self.count if self.count else 0.0

    def reset(self) -> None:
        """Forget every observation (``ema_alpha`` is kept)."""
        self.count = 0
        self.total = 0.0
        self.last = 0.0
        self.ema = 0.0

    def time(self) -> "_TimerContext":
        """Context manager observing the duration of a ``with`` block."""
        return _TimerContext(self)


class _TimerContext:
    """Context manager produced by :meth:`Timer.time`."""

    __slots__ = ("_timer", "_t0")

    def __init__(self, timer: Timer) -> None:
        self._timer = timer
        self._t0 = 0.0

    def __enter__(self) -> "_TimerContext":
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self._timer.observe(time.perf_counter() - self._t0)


class MetricsRegistry:
    """Flat get-or-create namespace of named instruments.

    Asking for an existing name returns the same instrument object, so
    hot paths can cache the instrument once and skip the dict lookup.
    A name is bound to one instrument kind for the registry's lifetime.
    """

    def __init__(self) -> None:
        self._instruments: dict[str, Any] = {}

    def _get(self, name: str, factory: type, **kwargs: Any) -> Any:
        instrument = self._instruments.get(name)
        if instrument is None:
            instrument = factory(**kwargs)
            self._instruments[name] = instrument
        elif not isinstance(instrument, factory):
            raise TypeError(
                f"metric {name!r} is a {type(instrument).__name__}, "
                f"not a {factory.__name__}"
            )
        return instrument

    def counter(self, name: str) -> Counter:
        """Get or create the counter ``name``."""
        return self._get(name, Counter)

    def gauge(self, name: str) -> Gauge:
        """Get or create the gauge ``name``."""
        return self._get(name, Gauge)

    def timer(self, name: str, ema_alpha: float = 0.2) -> Timer:
        """Get or create the timer ``name``."""
        return self._get(name, Timer, ema_alpha=ema_alpha)

    def alias(self, name: str, instrument: Any) -> None:
        """Bind an existing instrument object under ``name`` here.

        Lets two registries share one instrument so hot paths record a
        sample exactly once (the engine aliases its ``schedule_s`` timer
        and ``instances`` counter into the scheduler's registry at the
        start of every run).  Replaces any previous binding.
        """
        if not isinstance(instrument, (Counter, Gauge, Timer)):
            raise TypeError(f"not an instrument: {type(instrument).__name__}")
        self._instruments[name] = instrument

    def names(self) -> list[str]:
        """All registered instrument names, sorted."""
        return sorted(self._instruments)

    def snapshot(self) -> dict[str, Any]:
        """Summarize every instrument as plain JSON-friendly values.

        Counters map to their integer value; gauges to
        ``{value, min, max, samples}``; timers to
        ``{count, total_s, mean_s, last_s, ema_s}``.
        """
        out: dict[str, Any] = {}
        for name in sorted(self._instruments):
            instrument = self._instruments[name]
            if isinstance(instrument, Counter):
                out[name] = instrument.value
            elif isinstance(instrument, Gauge):
                out[name] = {
                    "value": instrument.value,
                    "min": instrument.min if instrument.samples else None,
                    "max": instrument.max if instrument.samples else None,
                    "samples": instrument.samples,
                }
            elif isinstance(instrument, Timer):
                out[name] = {
                    "count": instrument.count,
                    "total_s": instrument.total,
                    "mean_s": instrument.mean,
                    "last_s": instrument.last,
                    "ema_s": instrument.ema,
                }
        return out

    def reset(self) -> None:
        """Drop every instrument (names become unbound again)."""
        self._instruments.clear()

    def reset_values(self) -> None:
        """Zero every instrument in place (names stay bound).

        Unlike :meth:`reset`, cached instrument references and aliased
        bindings remain valid — the right call between training phases
        or runs when hot paths hold direct instrument references.
        Shared (aliased) instruments are reset once through whichever
        registry resets first; the other registry sees the same zeroed
        object.
        """
        for instrument in self._instruments.values():
            instrument.reset()
