"""Seeded fault injection: node failures, repairs, and job kills.

Real Theta operation has to survive node outages; the simulator models
them as a renewal process per failure *event* (not per node): the gap
between consecutive cluster-wide failures is exponential with mean
``mtbf`` seconds, each failure takes down a small group of nodes (a
"blade" — correlated multi-node failures are the common case on real
bladed systems), and each downed node is repaired after an exponential
``mttr``-mean interval (floored at ``min_repair``).  Independently, a
Poisson job-kill process aborts one running job per event, modelling
application-level crashes that do not damage the node.

All randomness comes from the injector's own :class:`numpy.random`
``Generator`` seeded from :class:`FaultConfig` — the fault stream is
decoupled from workload and agent RNGs, so the same ``(seed, config)``
pair yields a bit-identical fault schedule regardless of scheduler.

The injector only *samples*; the :class:`~repro.sim.engine.Engine`
owns event scheduling and the kill/requeue mechanics.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Mapping

import numpy as np

#: allowed dispositions for jobs killed by a fault
REQUEUE_POLICIES = ("requeue-front", "requeue-back", "abandon")


@dataclass(frozen=True)
class FaultConfig:
    """Knobs of the fault model (immutable, manifest-serializable).

    Parameters
    ----------
    mtbf:
        Mean time between node-failure events, seconds.  ``0`` disables
        node failures entirely.
    mttr:
        Mean time to repair a downed node, seconds.  Must be positive
        when ``mtbf > 0``.
    seed:
        Seed of the injector's private RNG stream.
    blade_size:
        Maximum nodes taken down by one failure event; the actual count
        is uniform in ``[1, blade_size]`` when a blade failure triggers.
    blade_prob:
        Probability that a failure event is a correlated blade failure
        (more than one node) instead of a single-node failure.
    job_kill_mtbf:
        Mean time between job-kill faults, seconds.  ``0`` disables
        application-level kills.
    requeue:
        Disposition of fault-killed jobs: ``requeue-front`` (head of
        queue, default), ``requeue-back`` (tail, like a resubmission),
        or ``abandon`` (the job is lost and dependents are cancelled).
    min_repair:
        Floor on sampled repair times, so a node is never repaired in
        the same instant it fails.
    max_requeues:
        Cap on per-job requeues; once a job has been killed this many
        times it is abandoned instead.  ``None`` means unlimited.
    """

    mtbf: float = 0.0
    mttr: float = 3600.0
    seed: int = 0
    blade_size: int = 4
    blade_prob: float = 0.25
    job_kill_mtbf: float = 0.0
    requeue: str = "requeue-front"
    min_repair: float = 60.0
    max_requeues: int | None = None

    def __post_init__(self) -> None:
        if self.mtbf < 0:
            raise ValueError(f"mtbf must be >= 0, got {self.mtbf}")
        if self.mtbf > 0 and self.mttr <= 0:
            raise ValueError(f"mttr must be positive, got {self.mttr}")
        if self.blade_size < 1:
            raise ValueError(f"blade_size must be >= 1, got {self.blade_size}")
        if not 0.0 <= self.blade_prob <= 1.0:
            raise ValueError(
                f"blade_prob must be in [0, 1], got {self.blade_prob}"
            )
        if self.job_kill_mtbf < 0:
            raise ValueError(
                f"job_kill_mtbf must be >= 0, got {self.job_kill_mtbf}"
            )
        if self.requeue not in REQUEUE_POLICIES:
            raise ValueError(
                f"requeue must be one of {REQUEUE_POLICIES}, got {self.requeue!r}"
            )
        if self.min_repair < 0:
            raise ValueError(f"min_repair must be >= 0, got {self.min_repair}")
        if self.max_requeues is not None and self.max_requeues < 0:
            raise ValueError(
                f"max_requeues must be >= 0 or None, got {self.max_requeues}"
            )

    @property
    def active(self) -> bool:
        """Whether any fault process is enabled at all."""
        return self.mtbf > 0 or self.job_kill_mtbf > 0

    def as_dict(self) -> dict:
        """Plain-JSON form for run manifests (round-trips via from_dict)."""
        return {
            "mtbf": self.mtbf,
            "mttr": self.mttr,
            "seed": self.seed,
            "blade_size": self.blade_size,
            "blade_prob": self.blade_prob,
            "job_kill_mtbf": self.job_kill_mtbf,
            "requeue": self.requeue,
            "min_repair": self.min_repair,
            "max_requeues": self.max_requeues,
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> "FaultConfig":
        """Rebuild a config from its :meth:`as_dict` form."""
        known = {
            "mtbf", "mttr", "seed", "blade_size", "blade_prob",
            "job_kill_mtbf", "requeue", "min_repair", "max_requeues",
        }
        unknown = set(data) - known
        if unknown:
            raise ValueError(f"unknown fault config key(s): {sorted(unknown)}")
        return cls(**dict(data))

    @classmethod
    def from_spec(cls, spec: str) -> "FaultConfig":
        """Parse the CLI ``--faults`` mini-language.

        ``spec`` is a comma-separated ``key=value`` list, e.g.
        ``"mtbf=7200,mttr=1800,seed=3,requeue=abandon"``.  Keys match
        the dataclass fields; numeric values are coerced, ``requeue``
        stays a string, and ``max_requeues=none`` clears the cap.
        """
        values: dict = {}
        for part in spec.split(","):
            part = part.strip()
            if not part:
                continue
            if "=" not in part:
                raise ValueError(
                    f"bad --faults entry {part!r}: expected key=value"
                )
            key, _, raw = part.partition("=")
            key = key.strip()
            raw = raw.strip()
            if key == "requeue":
                values[key] = raw
            elif key in ("seed", "blade_size"):
                values[key] = int(raw)
            elif key == "max_requeues":
                values[key] = None if raw.lower() == "none" else int(raw)
            elif key in ("mtbf", "mttr", "blade_prob", "job_kill_mtbf",
                         "min_repair"):
                values[key] = float(raw)
            else:
                raise ValueError(f"unknown --faults key {key!r}")
        return cls(**values)


@dataclass(frozen=True, slots=True)
class ResilienceMetrics:
    """End-of-run summary of fault impact and graceful degradation.

    ``degraded_utilization`` is useful work over the capacity that was
    *actually up*: ``used / (N * elapsed - lost_node_seconds)`` — the
    fair utilization figure for a run where nodes were down part of the
    time.  (It lives here rather than :mod:`repro.sim.metrics` because
    the engine builds it and the metrics module imports the engine.)
    """

    node_failures: int        #: failure events (one may hit several nodes)
    nodes_failed: int         #: individual node-down transitions
    node_repairs: int         #: individual node-up transitions
    jobs_killed: int          #: running jobs aborted by any fault
    requeues: int             #: kills that returned the job to the queue
    abandoned: int            #: jobs permanently lost (incl. doomed deps)
    lost_node_seconds: float  #: capacity lost to node downtime
    wasted_node_seconds: float  #: partial work destroyed by kills
    degraded_utilization: float  #: useful work over *up* capacity

    def as_dict(self) -> dict:
        """Flat JSON-serialisable mapping (manifest / report payloads)."""
        return {
            "node_failures": self.node_failures,
            "nodes_failed": self.nodes_failed,
            "node_repairs": self.node_repairs,
            "jobs_killed": self.jobs_killed,
            "requeues": self.requeues,
            "abandoned": self.abandoned,
            "lost_node_seconds": self.lost_node_seconds,
            "wasted_node_seconds": self.wasted_node_seconds,
            "degraded_utilization": self.degraded_utilization,
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> "ResilienceMetrics":
        """Rebuild metrics from their :meth:`as_dict` form.

        Round-trip partner of :meth:`as_dict`; sweep rollups persist
        cells as JSON and reports rebuild them through here.
        """
        fields = {f.name for f in dataclasses.fields(cls)}
        unknown = set(data) - fields
        if unknown:
            raise ValueError(
                f"unknown ResilienceMetrics key(s): {sorted(unknown)}")
        return cls(**{name: data[name] for name in fields})


@dataclass(slots=True)
class FaultCounters:
    """Running tallies of what the fault model has done so far."""

    node_failures: int = 0     #: failure events (one may hit several nodes)
    nodes_failed: int = 0      #: individual node-down transitions
    node_repairs: int = 0      #: individual node-up transitions
    jobs_killed: int = 0       #: running jobs aborted by any fault
    requeues: int = 0          #: kills that returned the job to the queue
    abandons: int = 0          #: jobs permanently lost (incl. doomed deps)

    def as_dict(self) -> dict:
        """Plain-dict form for metrics/trace payloads."""
        return {
            "node_failures": self.node_failures,
            "nodes_failed": self.nodes_failed,
            "node_repairs": self.node_repairs,
            "jobs_killed": self.jobs_killed,
            "requeues": self.requeues,
            "abandons": self.abandons,
        }


class FaultInjector:
    """Samples the fault processes from a private seeded RNG stream.

    The engine asks three questions, all answered deterministically
    from the config seed:

    * :meth:`next_failure_gap` — seconds until the next node-failure
      event;
    * :meth:`sample_failure` — which node count / repair durations the
      current failure event carries (victim *indices* are chosen by the
      engine from currently-up nodes, but the random draws happen here);
    * :meth:`next_kill_gap` / :meth:`choose_victim` — the job-kill
      process and its target among currently running jobs.

    Isolation contract: ``_rng`` is consumed by the engine's fault
    bookkeeping only, never by scheduler decision code, so the (time,
    nodes) failure stream is policy-independent by construction —
    swapping schedulers cannot perturb when or where faults strike.
    This is *statically enforced*: RPR602 (``fault-rng-isolation``,
    :mod:`repro.check.taint`) fails ``repro check --strict`` if any
    ``schedule`` method can reach a ``_rng`` consumption through the
    call graph.
    """

    def __init__(self, config: FaultConfig) -> None:
        if not config.active:
            raise ValueError(
                "FaultInjector requires an active FaultConfig "
                "(mtbf > 0 or job_kill_mtbf > 0)"
            )
        self.config = config
        self._rng = np.random.default_rng(config.seed)
        self.counters = FaultCounters()

    # -- node failure process ---------------------------------------------
    def next_failure_gap(self) -> float:
        """Seconds until the next node-failure event (exponential)."""
        return float(self._rng.exponential(self.config.mtbf))

    def sample_failure(self) -> tuple[int, list[float]]:
        """Draw the shape of one failure event.

        Returns ``(n_nodes, repair_times)``: how many nodes this event
        takes down (1, or uniform in ``[2, blade_size]`` for a blade
        failure) and the per-node repair durations (exponential with
        mean ``mttr``, floored at ``min_repair``).
        """
        cfg = self.config
        n_nodes = 1
        if cfg.blade_size > 1 and self._rng.random() < cfg.blade_prob:
            n_nodes = int(self._rng.integers(2, cfg.blade_size + 1))
        repairs = [
            max(cfg.min_repair, float(self._rng.exponential(cfg.mttr)))
            for _ in range(n_nodes)
        ]
        return n_nodes, repairs

    def choose_failed_nodes(self, up_free_first: np.ndarray, n: int) -> np.ndarray:
        """Pick ``n`` victim nodes uniformly from the candidate array.

        ``up_free_first`` is the engine-provided candidate pool (all
        currently-up nodes); sampling is without replacement from the
        injector's RNG so the choice is part of the deterministic fault
        stream.
        """
        n = min(n, up_free_first.size)
        if n == 0:
            return np.empty(0, dtype=np.int64)
        chosen = self._rng.choice(up_free_first, size=n, replace=False)
        chosen.sort()
        return chosen.astype(np.int64)

    # -- job-kill process -----------------------------------------------------
    def next_kill_gap(self) -> float:
        """Seconds until the next job-kill fault (exponential)."""
        return float(self._rng.exponential(self.config.job_kill_mtbf))

    def choose_victim(self, running_ids: list[int]) -> int:
        """Pick the job id a kill fault aborts (uniform over running)."""
        if not running_ids:
            raise ValueError("no running jobs to kill")
        return int(running_ids[int(self._rng.integers(len(running_ids)))])

    def reset(self) -> None:
        """Re-seed the RNG and zero counters (fresh episode, same stream)."""
        self._rng = np.random.default_rng(self.config.seed)
        self.counters = FaultCounters()
