"""Cross-scheduler integration tests on realistic workloads.

Every policy in the repository replays the same Theta-like trace; the
tests assert system-wide conservation laws and the qualitative
relationships that must hold regardless of tuning.
"""

import numpy as np
import pytest

from repro.core.config import DRASConfig
from repro.core.decima import DecimaPG
from repro.core.dras_dql import DRASDQL
from repro.core.dras_pg import DRASPG
from repro.schedulers import (
    BinPacking,
    ConservativeBackfill,
    FCFSEasy,
    KnapsackOptimization,
    RandomScheduler,
    sjf,
)
from repro.sim.engine import run_simulation
from repro.sim.job import ExecMode, JobState
from repro.sim.metrics import RunMetrics
from repro.sim.observers import UtilizationTimeline
from repro.workload.models import ThetaModel

NODES = 64


@pytest.fixture(scope="module")
def trace():
    model = ThetaModel.scaled(NODES)
    return model.generate(300, np.random.default_rng(11))


def _all_schedulers():
    cfg = DRASConfig.scaled(NODES, window=8, time_scale=ThetaModel.MAX_RUNTIME)
    return [
        FCFSEasy(),
        BinPacking(),
        RandomScheduler(seed=1),
        KnapsackOptimization("capability"),
        ConservativeBackfill(),
        sjf(),
        DRASPG(cfg),
        DRASDQL(cfg),
        DecimaPG(cfg),
    ]


@pytest.fixture(scope="module")
def all_results(trace):
    out = {}
    for scheduler in _all_schedulers():
        jobs = [j.copy_fresh() for j in trace]
        timeline = UtilizationTimeline(NODES)
        result = run_simulation(NODES, scheduler, jobs, observers=[timeline])
        out[scheduler.name] = (result, timeline)
    return out


class TestConservation:
    def test_every_policy_finishes_every_job(self, all_results, trace):
        for name, (result, _) in all_results.items():
            finished = result.finished_jobs
            assert len(finished) == len(trace), name

    def test_total_work_identical_across_policies(self, all_results):
        """Scheduling reorders work; it cannot create or destroy it."""
        totals = {
            name: sum(j.node_seconds for j in result.finished_jobs)
            for name, (result, _) in all_results.items()
        }
        values = set(round(v, 6) for v in totals.values())
        assert len(values) == 1

    def test_per_job_runtimes_unchanged(self, all_results, trace):
        expected = {j.job_id: j.runtime for j in trace}
        for name, (result, _) in all_results.items():
            for job in result.finished_jobs:
                assert job.runtime == expected[job.job_id], name

    def test_capacity_never_exceeded(self, all_results):
        for name, (_, timeline) in all_results.items():
            _, used = timeline.steps()
            assert used.max() <= NODES, name

    def test_makespan_lower_bound(self, all_results, trace):
        """No schedule beats the critical-path/volume lower bounds."""
        volume_bound = sum(j.size * j.runtime for j in trace) / NODES
        longest_job = max(j.runtime for j in trace)
        first_submit = min(j.submit_time for j in trace)
        for name, (result, _) in all_results.items():
            span = result.makespan - first_submit
            assert span >= volume_bound * 0.999 - 1e-6 or span >= longest_job, name
            assert span + 1e-6 >= longest_job, name


class TestQualitativeRelationships:
    def test_reservation_policies_bound_max_wait(self, all_results):
        fcfs = RunMetrics.from_result(all_results["FCFS"][0])
        random_m = RunMetrics.from_result(all_results["Random"][0])
        # the no-reservation random packer cannot beat FCFS's max wait
        # on a capability trace with whole-system jobs
        assert random_m.max_wait >= fcfs.max_wait * 0.9

    def test_conservative_not_more_aggressive_than_easy(self, all_results):
        easy = RunMetrics.from_result(all_results["FCFS"][0])
        conservative = RunMetrics.from_result(all_results["Conservative"][0])
        # conservative can only backfill a subset of EASY's choices
        assert conservative.avg_wait >= easy.avg_wait * 0.75

    def test_sjf_improves_average_wait_over_fcfs(self, all_results):
        fcfs = RunMetrics.from_result(all_results["FCFS"][0])
        sjf_m = RunMetrics.from_result(all_results["SJF"][0])
        assert sjf_m.avg_wait <= fcfs.avg_wait

    def test_modes_consistent_with_policy_class(self, all_results):
        reservation_free = {"BinPacking", "Random", "Optimization", "Decima-PG"}
        for name, (result, _) in all_results.items():
            modes = {j.mode for j in result.finished_jobs}
            if name in reservation_free:
                assert modes == {ExecMode.READY}, name
            else:
                assert ExecMode.READY in modes or ExecMode.RESERVED in modes


class TestDeterminism:
    @pytest.mark.parametrize("factory", [
        FCFSEasy, BinPacking, ConservativeBackfill, sjf,
        lambda: KnapsackOptimization("capability"),
    ], ids=["fcfs", "binpacking", "conservative", "sjf", "knapsack"])
    def test_deterministic_policies_reproduce_exactly(self, factory, trace):
        def run():
            jobs = [j.copy_fresh() for j in trace]
            run_simulation(NODES, factory(), jobs)
            return [(j.job_id, j.start_time, j.mode) for j in jobs]

        assert run() == run()

    def test_seeded_agents_reproduce_exactly(self, trace):
        def run():
            cfg = DRASConfig.scaled(NODES, window=8, seed=123,
                                    time_scale=ThetaModel.MAX_RUNTIME)
            agent = DRASPG(cfg)
            jobs = [j.copy_fresh() for j in trace]
            run_simulation(NODES, agent, jobs)
            return [(j.job_id, j.start_time) for j in jobs]

        assert run() == run()
