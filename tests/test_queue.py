"""Unit tests for the wait queue and dependency gating."""

import pytest

from repro.sim.job import JobState
from repro.sim.queue import WaitQueue
from tests.conftest import make_job


class TestSubmission:
    def test_submit_makes_waiting(self):
        q = WaitQueue()
        job = make_job()
        q.submit(job)
        assert job.state is JobState.WAITING
        assert len(q) == 1

    def test_resubmit_raises(self):
        q = WaitQueue()
        job = make_job()
        q.submit(job)
        with pytest.raises(RuntimeError, match="resubmitted"):
            q.submit(job)

    def test_arrival_order_preserved(self):
        q = WaitQueue()
        jobs = [make_job(submit=float(i)) for i in range(5)]
        for j in jobs:
            q.submit(j)
        assert q.waiting == jobs


class TestDependencies:
    def test_open_dependency_holds_job(self):
        q = WaitQueue()
        child = make_job(deps=(42,))
        q.submit(child)
        assert child.state is JobState.HELD
        assert len(q) == 0
        assert q.held == [child]
        assert q.total_pending == 1

    def test_satisfied_dependency_waits_immediately(self):
        q = WaitQueue()
        parent = make_job(job_id=42)
        q.submit(parent)
        q.remove(parent)
        parent.state = JobState.RUNNING
        parent.state = JobState.FINISHED
        q.notify_finished(parent)
        child = make_job(deps=(42,))
        q.submit(child)
        assert child.state is JobState.WAITING

    def test_finish_releases_dependents(self):
        q = WaitQueue()
        parent = make_job(job_id=7)
        child = make_job(deps=(7,), submit=5.0)
        q.submit(parent)
        q.submit(child)
        assert child.state is JobState.HELD
        q.remove(parent)
        parent.state = JobState.FINISHED
        q.notify_finished(parent)
        assert child.state is JobState.WAITING
        assert q.waiting == [child]

    def test_multi_parent_requires_all(self):
        q = WaitQueue()
        p1, p2 = make_job(job_id=1), make_job(job_id=2)
        child = make_job(deps=(1, 2))
        for j in (p1, p2, child):
            q.submit(j)
        for p in (p1, p2):
            q.remove(p)
            p.state = JobState.FINISHED
        q.notify_finished(p1)
        assert child.state is JobState.HELD
        q.notify_finished(p2)
        assert child.state is JobState.WAITING

    def test_released_jobs_sorted_by_submit_time(self):
        q = WaitQueue()
        parent = make_job(job_id=1)
        late = make_job(deps=(1,), submit=20.0)
        early = make_job(deps=(1,), submit=10.0)
        q.submit(parent)
        q.submit(late)
        q.submit(early)
        q.remove(parent)
        parent.state = JobState.FINISHED
        q.notify_finished(parent)
        assert q.waiting == [early, late]


class TestWindow:
    def test_window_prefix(self):
        q = WaitQueue()
        jobs = [make_job(submit=float(i)) for i in range(5)]
        for j in jobs:
            q.submit(j)
        assert q.window(3) == jobs[:3]

    def test_window_larger_than_queue(self):
        q = WaitQueue()
        job = make_job()
        q.submit(job)
        assert q.window(10) == [job]

    def test_window_requires_positive(self):
        with pytest.raises(ValueError):
            WaitQueue().window(0)


class TestRemoval:
    def test_remove(self):
        q = WaitQueue()
        job = make_job()
        q.submit(job)
        q.remove(job)
        assert len(q) == 0

    def test_remove_missing_raises(self):
        with pytest.raises(RuntimeError, match="not waiting"):
            WaitQueue().remove(make_job())

    def test_contains(self):
        q = WaitQueue()
        job = make_job()
        q.submit(job)
        assert job in q
        q.remove(job)
        assert job not in q
