"""Runtime pickle round-trips of every checkpoint-crossing object type.

RPR604 (``unpicklable-capture``) *statically* proves that no class
reachable from :mod:`repro.rl.checkpoint` captures an open file
handle, lock, lambda or live iterator.  These tests are the runtime
half of that acceptance property: every object type the checkpoint
module names — the three agents of the
:data:`repro.core.persistence._KINDS` registry,
:class:`~repro.sim.faults.FaultConfig`,
:class:`~repro.rl.checkpoint.LoadedCheckpoint` and the episode
records — survives ``pickle.dumps``/``loads`` (the exact transport a
``multiprocessing`` sweep pool and fork-based workers rely on), with
behaviour preserved across the boundary.
"""

from __future__ import annotations

import pickle

import numpy as np
import pytest

from repro.core.config import DRASConfig
from repro.core.persistence import _KINDS
from repro.rl.checkpoint import LoadedCheckpoint
from repro.rl.trainer import EpisodeStats
from repro.sim.faults import FaultConfig


def small_config() -> DRASConfig:
    return DRASConfig(num_nodes=4, window=5, hidden1=8, hidden2=4)


def roundtrip(obj):
    return pickle.loads(pickle.dumps(obj))


@pytest.mark.parametrize("kind", sorted(_KINDS))
def test_every_registered_agent_roundtrips(kind):
    agent = _KINDS[kind](small_config())
    clone = roundtrip(agent)
    assert type(clone) is type(agent)
    assert clone.config == agent.config
    # the full parameter state crosses the boundary bit-identically
    original = agent.network.state_dict()
    copied = clone.network.state_dict()
    assert sorted(copied) == sorted(original)
    for name, array in original.items():
        np.testing.assert_array_equal(copied[name], array)


@pytest.mark.parametrize("kind", sorted(_KINDS))
def test_agent_rng_stream_continues_after_roundtrip(kind):
    agent = _KINDS[kind](small_config())
    clone = roundtrip(agent)
    # both generators continue the *same* stream: a worker resuming
    # from a pickled agent samples exactly what the parent would have
    assert clone.rng.bit_generator.state == agent.rng.bit_generator.state
    np.testing.assert_array_equal(clone.rng.random(8), agent.rng.random(8))


def test_fault_config_roundtrips():
    cfg = FaultConfig(mtbf=7200.0, mttr=1800.0, seed=3, blade_size=6,
                      job_kill_mtbf=3600.0, requeue="abandon",
                      max_requeues=2)
    assert roundtrip(cfg) == cfg


def test_episode_stats_roundtrip():
    stats = EpisodeStats(episode=7, phase="train", num_jobs=40,
                         train_reward=-1.5, validation_reward=-1.25,
                         updates_done=4)
    assert roundtrip(stats) == stats


def test_loaded_checkpoint_roundtrips_whole():
    loaded = LoadedCheckpoint(
        agent=_KINDS["pg"](small_config()),
        episodes=[{"episode": 0, "phase": "train"}],
        telemetry_offset=128,
        faults=FaultConfig(mtbf=7200.0, seed=1),
    )
    clone = roundtrip(loaded)
    assert clone.episodes == loaded.episodes
    assert clone.episodes_done == 1
    assert clone.telemetry_offset == 128
    assert clone.faults == loaded.faults
    assert type(clone.agent) is type(loaded.agent)
