"""Standard Workload Format (SWF) reader and writer.

SWF is the interchange format of the Parallel Workloads Archive.  Each
non-comment line has 18 whitespace-separated fields; ``-1`` denotes a
missing value:

==  =======================  ==============================================
#   field                    use here
==  =======================  ==============================================
1   job number               ``Job.job_id``
2   submit time (s)          ``Job.submit_time``
3   wait time (s)            ignored (an output of scheduling, not input)
4   run time (s)             ``Job.runtime``
5   allocated processors     fallback size
6   average CPU time         ignored
7   used memory              ignored
8   requested processors     ``Job.size`` (divided by ``procs_per_node``)
9   requested time (s)       ``Job.walltime``
10  requested memory         ignored
11  status                   jobs with status 0/5 (failed/cancelled) kept
12  user id                  ``Job.user``
13  group id                 ignored
14  executable id            ignored
15  queue id                 optionally mapped to ``priority``
16  partition id             ignored
17  preceding job number     ``Job.dependencies``
18  think time               ignored
==  =======================  ==============================================
"""

from __future__ import annotations

import math
import warnings
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable

from repro.sim.job import Job

_NUM_FIELDS = 18

#: malformed-line details kept per report (the rest are only counted)
_MAX_REPORTED_LINES = 20


class SWFWarning(UserWarning):
    """Warning category for tolerated problems in lenient SWF reads."""


@dataclass
class SWFParseReport:
    """What a :func:`read_swf` pass saw, line by line.

    ``malformed`` holds ``(lineno, reason)`` pairs for lines that could
    not be parsed at all (too few fields, non-numeric values) — at most
    ``_MAX_REPORTED_LINES`` are kept, the rest only counted in
    ``n_malformed``.  ``skipped_records`` counts well-formed records the
    reader intentionally drops (zero runtime, no processors, negative
    submit time).
    """

    path: str
    total_lines: int = 0
    comment_lines: int = 0
    parsed_jobs: int = 0
    skipped_records: int = 0
    n_malformed: int = 0
    malformed: list[tuple[int, str]] = field(default_factory=list)

    def note_malformed(self, lineno: int, reason: str) -> None:
        """Record one unparseable line (capped detail, full count)."""
        self.n_malformed += 1
        if len(self.malformed) < _MAX_REPORTED_LINES:
            self.malformed.append((lineno, reason))

    def summary(self) -> str:
        """One-paragraph human-readable digest of the parse."""
        head = (
            f"{self.path}: {self.parsed_jobs} jobs from "
            f"{self.total_lines} lines ({self.comment_lines} comments, "
            f"{self.skipped_records} records skipped, "
            f"{self.n_malformed} malformed lines)"
        )
        details = "".join(
            f"\n  line {lineno}: {reason}" for lineno, reason in self.malformed
        )
        if self.n_malformed > len(self.malformed):
            details += f"\n  ... and {self.n_malformed - len(self.malformed)} more"
        return head + details


def read_swf(
    path: str | Path,
    procs_per_node: int = 1,
    max_jobs: int | None = None,
    high_priority_queues: frozenset[int] = frozenset(),
    keep_dependencies: bool = True,
    strict: bool = True,
) -> list[Job]:
    """Parse an SWF file into a list of :class:`~repro.sim.job.Job`.

    Parameters
    ----------
    procs_per_node:
        Requested processor counts are divided by this (rounded up) to
        obtain node counts, since the simulator schedules whole nodes.
    max_jobs:
        Stop after this many jobs (useful for taking trace prefixes).
    high_priority_queues:
        SWF queue ids mapped to ``priority=1``.
    keep_dependencies:
        Honor field 17 (preceding job number).
    strict:
        With ``strict=True`` (default) any unparseable line raises
        ``ValueError`` with the file/line position.  With
        ``strict=False`` — for real-world archive logs with damaged
        lines — malformed lines are skipped, counted, and summarized in
        a single :class:`SWFWarning`; use :func:`read_swf_report` to
        get the full :class:`SWFParseReport`.
    """
    jobs, _report = read_swf_report(
        path,
        procs_per_node=procs_per_node,
        max_jobs=max_jobs,
        high_priority_queues=high_priority_queues,
        keep_dependencies=keep_dependencies,
        strict=strict,
    )
    return jobs


def read_swf_report(
    path: str | Path,
    procs_per_node: int = 1,
    max_jobs: int | None = None,
    high_priority_queues: frozenset[int] = frozenset(),
    keep_dependencies: bool = True,
    strict: bool = True,
) -> tuple[list[Job], SWFParseReport]:
    """:func:`read_swf` plus the :class:`SWFParseReport` of the pass."""
    jobs: list[Job] = []
    seen_ids: set[int] = set()
    report = SWFParseReport(path=str(path))
    with open(path, "r", encoding="utf-8", errors="replace") as fh:
        for lineno, line in enumerate(fh, 1):
            report.total_lines = lineno
            line = line.strip()
            if not line:
                continue
            if line.startswith(";"):
                report.comment_lines += 1
                continue
            parts = line.split()
            try:
                if len(parts) < _NUM_FIELDS:
                    raise ValueError(
                        f"expected {_NUM_FIELDS} fields, got {len(parts)}"
                    )
                job = _parse_record(
                    parts, procs_per_node, high_priority_queues,
                    keep_dependencies, seen_ids,
                )
            except ValueError as exc:
                if strict:
                    raise ValueError(f"{path}:{lineno}: {exc}") from None
                report.note_malformed(lineno, str(exc))
                continue
            if job is None:
                report.skipped_records += 1
                continue
            jobs.append(job)
            seen_ids.add(job.job_id)
            report.parsed_jobs = len(jobs)
            if max_jobs is not None and len(jobs) >= max_jobs:
                break
    report.parsed_jobs = len(jobs)
    if report.n_malformed and not strict:
        warnings.warn(report.summary(), SWFWarning, stacklevel=2)
    jobs.sort(key=lambda j: (j.submit_time, j.job_id))
    return jobs, report


def _parse_record(
    parts: list[str],
    procs_per_node: int,
    high_priority_queues: frozenset[int],
    keep_dependencies: bool,
    seen_ids: set[int],
) -> Job | None:
    job_id = int(parts[0])
    submit = float(parts[1])
    run_time = float(parts[3])
    allocated = int(float(parts[4]))
    requested_procs = int(float(parts[7]))
    requested_time = float(parts[8])
    user_id = parts[11]
    queue_id = int(float(parts[14]))
    preceding = int(float(parts[16]))

    procs = requested_procs if requested_procs > 0 else allocated
    if procs <= 0 or run_time <= 0 or submit < 0:
        return None  # malformed / zero-length records are skipped
    walltime = requested_time if requested_time > 0 else run_time
    size = max(1, math.ceil(procs / procs_per_node))

    deps: tuple[int, ...] = ()
    if keep_dependencies and preceding > 0 and preceding in seen_ids:
        deps = (preceding,)

    return Job(
        size=size,
        walltime=walltime,
        runtime=run_time,
        submit_time=submit,
        priority=1 if queue_id in high_priority_queues else 0,
        dependencies=deps,
        user=user_id,
        job_id=job_id,
    )


def write_swf(
    jobs: Iterable[Job],
    path: str | Path,
    procs_per_node: int = 1,
    header: str | None = None,
) -> None:
    """Serialize jobs to SWF.

    Post-scheduling fields (wait time) are emitted when available so a
    simulated schedule can round-trip through standard SWF tooling.
    """
    with open(path, "w", encoding="utf-8") as fh:
        if header:
            for line in header.splitlines():
                fh.write(f"; {line}\n")
        for job in jobs:
            wait = -1
            if job.start_time is not None:
                wait = int(job.start_time - job.submit_time)
            dep = job.dependencies[0] if job.dependencies else -1
            fields = [
                job.job_id,
                int(job.submit_time),
                wait,
                int(job.runtime),
                job.size * procs_per_node,   # allocated processors
                -1,
                -1,
                job.size * procs_per_node,   # requested processors
                int(job.walltime),
                -1,
                1,                           # status: completed
                job.user or -1,
                -1,
                -1,
                1 if job.priority else 0,    # queue id encodes priority
                -1,
                dep,
                -1,
            ]
            fh.write(" ".join(str(f) for f in fields) + "\n")
