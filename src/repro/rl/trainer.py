"""Episodic training with per-episode snapshots and validation.

Training follows §III-C: the network parameters start random, each
episode replays one jobset from an all-idle initial state, parameters
update every ten scheduling instances, and the trainer takes a snapshot
of the model after every episode.  An unseen validation jobset measures
progress; the convergence monitor declares convergence when the
validation reward plateaus.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.obs import trace as _trace
from repro.obs.metrics import MetricsRegistry
from repro.rl.meter import RewardMeter
from repro.sim.cluster import Cluster
from repro.sim.engine import Engine
from repro.sim.job import Job


@dataclass(frozen=True)
class EpisodeStats:
    """Bookkeeping of one training episode."""

    episode: int
    phase: str
    num_jobs: int
    train_reward: float
    validation_reward: float
    updates_done: int


@dataclass
class TrainingHistory:
    """Episode statistics plus model snapshots."""

    episodes: list[EpisodeStats] = field(default_factory=list)
    snapshots: list[dict[str, np.ndarray]] = field(default_factory=list)

    @property
    def validation_curve(self) -> np.ndarray:
        return np.array([e.validation_reward for e in self.episodes])

    def best_episode(self) -> int:
        """Index of the snapshot with the highest validation reward."""
        if not self.episodes:
            raise ValueError("no episodes recorded")
        return int(np.argmax(self.validation_curve))

    def converged_at(self, window: int = 5, rel_tol: float = 0.05) -> int | None:
        """First episode where the validation reward plateaus.

        The curve is considered converged at episode ``i`` when the last
        ``window`` validation rewards vary by less than ``rel_tol``
        relative to their mean magnitude.  Returns ``None`` if the curve
        never converges.
        """
        curve = self.validation_curve
        for i in range(window - 1, curve.size):
            chunk = curve[i - window + 1 : i + 1]
            scale = max(abs(float(np.mean(chunk))), 1e-12)
            if float(np.ptp(chunk)) <= rel_tol * scale:
                return i
        return None


class Trainer:
    """Trains a DRAS (or Decima) agent over a sequence of jobsets.

    Parameters
    ----------
    agent:
        An agent exposing ``schedule`` plus ``train`` / ``eval`` mode
        toggles and ``state_dict`` (DRASPG, DRASDQL, DecimaPG).
    num_nodes:
        System size for the simulated cluster.
    validation_jobs:
        The unseen jobset scored after every episode (§IV-D uses one
        held-out month).  Without it, validation rewards are NaN.
    """

    def __init__(
        self,
        agent,
        num_nodes: int,
        validation_jobs: list[Job] | None = None,
        snapshot_every: int = 1,
    ) -> None:
        if snapshot_every <= 0:
            raise ValueError("snapshot_every must be positive")
        self.agent = agent
        self.num_nodes = num_nodes
        self.validation_jobs = validation_jobs
        self.snapshot_every = snapshot_every
        #: always-on training statistics (episode counts, phase timers)
        self.metrics = MetricsRegistry()

    # -- single pieces -----------------------------------------------------------
    def run_episode(self, jobset: list[Job]) -> float:
        """One training episode; returns the total collected reward."""
        self.agent.train()
        meter = RewardMeter(self.agent.reward_fn)
        engine = Engine(
            Cluster(self.num_nodes),
            self.agent,
            [j.copy_fresh() for j in jobset],
            observers=[meter],
        )
        tracer = _trace.global_tracer()
        with self.metrics.timer("train.episode_s").time():
            if tracer is None:
                engine.run()
            else:
                with tracer.span("train.episode", jobs=len(jobset)):
                    engine.run()
        self.metrics.counter("train.episodes").inc()
        return meter.total

    def validate(self) -> float:
        """Score the frozen current policy on the validation jobset."""
        if self.validation_jobs is None:
            return float("nan")
        was_learning = self.agent.learning
        self.agent.eval(online_learning=False)
        meter = RewardMeter(self.agent.reward_fn)
        engine = Engine(
            Cluster(self.num_nodes),
            self.agent,
            [j.copy_fresh() for j in self.validation_jobs],
            observers=[meter],
        )
        tracer = _trace.global_tracer()
        with self.metrics.timer("train.validate_s").time():
            if tracer is None:
                engine.run()
            else:
                with tracer.span("train.validate",
                                 jobs=len(self.validation_jobs)):
                    engine.run()
        self.metrics.counter("train.validations").inc()
        self.agent.learning = was_learning
        return meter.total

    # -- full loop ------------------------------------------------------------------
    def train(
        self,
        jobsets: list[tuple[str, list[Job]]],
        history: TrainingHistory | None = None,
        stop_on_convergence: bool = False,
        convergence_window: int = 5,
    ) -> TrainingHistory:
        """Train over ``(phase_name, jobset)`` pairs in order."""
        history = history or TrainingHistory()
        for phase, jobset in jobsets:
            episode = len(history.episodes)
            train_reward = self.run_episode(jobset)
            val_reward = self.validate()
            updates = getattr(self.agent, "updates_done", 0)
            history.episodes.append(
                EpisodeStats(
                    episode=episode,
                    phase=phase,
                    num_jobs=len(jobset),
                    train_reward=train_reward,
                    validation_reward=val_reward,
                    updates_done=updates,
                )
            )
            if episode % self.snapshot_every == 0:
                history.snapshots.append(self.agent.state_dict())
            if stop_on_convergence and history.converged_at(convergence_window):
                break
        return history
