"""Loss heads and action-distribution helpers.

DRAS-PG needs a *masked* softmax over the window (invalid actions are
masked out and the valid probabilities rescaled, §III-B) and the
REINFORCE gradient; DRAS-DQL needs a mean-squared TD error.
"""

from __future__ import annotations

import numpy as np


def masked_softmax(logits: np.ndarray, mask: np.ndarray) -> np.ndarray:
    """Softmax over ``logits`` with invalid entries masked to zero.

    ``mask`` is boolean with at least one valid entry per row.  Works on
    1-D (single sample) or 2-D (batch) inputs.
    """
    logits = np.asarray(logits, dtype=np.float64)
    mask = np.asarray(mask, dtype=bool)
    if logits.shape != mask.shape:
        raise ValueError(f"shape mismatch: logits {logits.shape} vs mask {mask.shape}")
    squeeze = logits.ndim == 1
    if squeeze:
        logits = logits[None, :]
        mask = mask[None, :]
    if not mask.any(axis=1).all():
        raise ValueError("every row needs at least one valid action")
    shifted = np.where(mask, logits, -np.inf)
    with np.errstate(over="ignore", invalid="ignore"):
        # -inf - max stays -inf; the overflow warning on that path is benign
        shifted = shifted - shifted.max(axis=1, keepdims=True)
    exp = np.exp(shifted, where=mask, out=np.zeros_like(shifted))
    probs = exp / exp.sum(axis=1, keepdims=True)
    return probs[0] if squeeze else probs


def sample_from_probs(probs: np.ndarray, rng: np.random.Generator) -> int:
    """Stochastically draw an action index from a probability vector."""
    p = np.asarray(probs, dtype=np.float64)
    p = p / p.sum()
    return int(rng.choice(len(p), p=p))


def policy_gradient_loss(
    logits: np.ndarray,
    masks: np.ndarray,
    actions: np.ndarray,
    advantages: np.ndarray,
    entropy_coef: float = 0.0,
) -> tuple[float, np.ndarray]:
    """REINFORCE loss and its gradient w.r.t. the logits.

    Loss is ``-sum_k advantage_k * log pi(a_k | s_k)`` (Eq. 3 ascends
    the negated quantity), optionally minus ``entropy_coef`` times the
    policy entropy.  The entropy bonus prevents the softmax from
    saturating into a deterministic policy before it has explored
    enough job combinations (with Eq. 1's wait term, an unregularized
    policy quickly collapses into always-pick-the-oldest — an FCFS
    clone).  Returns ``(loss, dloss/dlogits)`` with the gradient zeroed
    on masked entries.
    """
    logits = np.atleast_2d(logits)
    masks = np.atleast_2d(masks).astype(bool)
    actions = np.asarray(actions, dtype=np.int64).ravel()
    advantages = np.asarray(advantages, dtype=np.float64).ravel()
    B = logits.shape[0]
    if not (masks.shape == logits.shape and actions.shape[0] == B
            and advantages.shape[0] == B):
        raise ValueError("inconsistent batch shapes")
    probs = masked_softmax(logits, masks)
    chosen = probs[np.arange(B), actions]
    if np.any(chosen <= 0):
        raise ValueError("an invalid (masked) action was taken")
    loss = float(-(advantages * np.log(chosen)).sum())
    one_hot = np.zeros_like(probs)
    one_hot[np.arange(B), actions] = 1.0
    grad = advantages[:, None] * (probs - one_hot)
    if entropy_coef:
        with np.errstate(divide="ignore", invalid="ignore"):
            log_p = np.where(probs > 0, np.log(probs), 0.0)
        entropy = -(probs * log_p).sum(axis=1)
        loss -= entropy_coef * float(entropy.sum())
        # d(-H)/dz_j = p_j * (log p_j + H)
        grad += entropy_coef * probs * (log_p + entropy[:, None])
    grad[~masks] = 0.0
    return loss, grad


def mse_loss(pred: np.ndarray, target: np.ndarray) -> tuple[float, np.ndarray]:
    """Mean squared error and its gradient w.r.t. ``pred``."""
    pred = np.asarray(pred, dtype=np.float64)
    target = np.asarray(target, dtype=np.float64)
    if pred.shape != target.shape:
        raise ValueError(f"shape mismatch: {pred.shape} vs {target.shape}")
    diff = pred - target
    n = max(1, pred.size)
    return float(np.mean(diff**2)), (2.0 / n) * diff
