"""Unit tests for the text chart renderers."""

import pytest

from repro.analysis.plots import hbar_chart, kiviat_text, line_chart, sparkline


class TestHBarChart:
    def test_basic_render(self):
        out = hbar_chart({"a": 1.0, "bb": 2.0})
        lines = out.splitlines()
        assert len(lines) == 2
        assert lines[0].startswith("a ")
        assert "2.00" in lines[1]

    def test_max_value_fills_width(self):
        out = hbar_chart({"x": 4.0}, width=10)
        assert "█" * 10 in out

    def test_zero_values(self):
        out = hbar_chart({"x": 0.0, "y": 0.0})
        assert "█" not in out

    def test_proportionality(self):
        out = hbar_chart({"half": 1.0, "full": 2.0}, width=8)
        half_line, full_line = out.splitlines()
        assert half_line.count("█") * 2 == full_line.count("█")

    def test_title(self):
        assert hbar_chart({"x": 1.0}, title="T").splitlines()[0] == "T"

    def test_validation(self):
        with pytest.raises(ValueError):
            hbar_chart({})
        with pytest.raises(ValueError):
            hbar_chart({"x": -1.0})
        with pytest.raises(ValueError):
            hbar_chart({"x": 1.0}, width=0)


class TestSparkline:
    def test_length_preserved(self):
        assert len(sparkline([1, 2, 3, 4])) == 4

    def test_monotone_series(self):
        s = sparkline([0, 1, 2, 3, 4, 5, 6, 7])
        assert s == "▁▂▃▄▅▆▇█"

    def test_flat_series(self):
        assert sparkline([5, 5, 5]) == "▁▁▁"

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            sparkline([])


class TestLineChart:
    def test_dimensions(self):
        out = line_chart({"a": [1, 2, 3]}, height=5)
        # 5 grid rows + legend
        assert len(out.splitlines()) == 6

    def test_extremes_on_boundary_rows(self):
        out = line_chart({"a": [0.0, 10.0]}, height=4)
        lines = out.splitlines()
        assert "o" in lines[0]      # max on the top row
        assert "o" in lines[-2]     # min on the bottom row

    def test_multiple_series_markers(self):
        out = line_chart({"a": [1, 2], "b": [2, 1]})
        assert "o=a" in out and "x=b" in out

    def test_validation(self):
        with pytest.raises(ValueError):
            line_chart({})
        with pytest.raises(ValueError):
            line_chart({"a": []})
        with pytest.raises(ValueError):
            line_chart({"a": [1]}, height=1)


class TestKiviatText:
    def test_groups_by_metric(self):
        out = kiviat_text(
            {"m1": {"util": 1.0, "wait": 0.5}, "m2": {"util": 0.0, "wait": 1.0}}
        )
        assert "[util]" in out and "[wait]" in out
        assert "m1" in out and "m2" in out

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            kiviat_text({})
