"""Baseline scheduling policies the paper compares DRAS against (§IV-A).

* :class:`FCFSEasy` — first come, first served with EASY backfilling,
  the default policy on many production supercomputers;
* :class:`BinPacking` — iteratively run the largest runnable job, the
  datacenter packing heuristic;
* :class:`RandomScheduler` — uniformly random runnable-job selection,
  the "untrained DRAS" control;
* :class:`KnapsackOptimization` — per-instance 0-1 knapsack solved with
  dynamic programming, pursuing the same objective as DRAS.

The Decima-PG learning baseline lives in :mod:`repro.core.decima` since
it shares DRAS's networks and state encoding.
"""

from repro.schedulers.base import BaseScheduler
from repro.schedulers.fcfs import FCFSEasy
from repro.schedulers.binpacking import BinPacking
from repro.schedulers.random_policy import RandomScheduler
from repro.schedulers.knapsack import KnapsackOptimization, solve_knapsack
from repro.schedulers.conservative import ConservativeBackfill
from repro.schedulers.priority_rules import (
    RuleScheduler,
    f1_wfp,
    ljf,
    sjf,
    smallest_area_first,
    unicef,
)

__all__ = [
    "BaseScheduler",
    "BinPacking",
    "ConservativeBackfill",
    "FCFSEasy",
    "KnapsackOptimization",
    "RandomScheduler",
    "RuleScheduler",
    "f1_wfp",
    "ljf",
    "sjf",
    "smallest_area_first",
    "solve_knapsack",
    "unicef",
]
