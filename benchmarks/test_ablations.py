"""Ablation benchmarks for the design choices DESIGN.md calls out.

These go beyond the paper's own evaluation, isolating the effect of:

* the learned level-2 backfilling vs EASY's first-fit rule (the paper
  argues backfill selection "has the potential for more aggressive
  optimization", §II-C);
* the entropy regularizer, without which REINFORCE under Eq. (1)
  collapses into an exact FCFS clone (DESIGN.md / README note);
* the window size ``W``, the starvation-alleviation knob of §III-B;
* EASY vs conservative backfilling on the heuristic side.
"""

import numpy as np
import pytest
from conftest import SCALE, save_report

from repro.analysis import evaluate_method, format_table
from repro.core.config import DRASConfig
from repro.core.dras_pg import DRASPG
from repro.experiments.common import get_scale, system_setup
from repro.rl.curriculum import train_with_curriculum
from repro.schedulers import ConservativeBackfill, FCFSEasy


def _train_variant(setup, scale, seed=0, **config_overrides):
    import dataclasses

    config = dataclasses.replace(setup.config, **config_overrides)
    agent = DRASPG(config)
    train_with_curriculum(
        agent, setup.model, setup.train_trace, setup.validation_trace,
        np.random.default_rng(seed),
        n_sampled=scale.n_sampled, n_real=scale.n_real,
        n_synthetic=scale.n_synthetic, jobs_per_set=scale.jobs_per_set,
    )
    agent.eval(online_learning=True)
    return agent


def test_ablation_learned_backfill(benchmark, report_dir):
    """Learned level-2 selection vs EASY first-fit inside DRAS-PG."""
    setup = system_setup("theta", SCALE, 0)
    scale = get_scale(SCALE)

    def run():
        rows = []
        for learned in (True, False):
            agent = _train_variant(setup, scale, learned_backfill=learned)
            res = evaluate_method(agent, setup.test_trace, setup.model.num_nodes)
            rows.append((learned, res))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    table = format_table(
        ["level-2 policy", "avg wait (h)", "max wait (d)",
         "backfilled wait (h)", "utilization"],
        [
            [
                "learned" if learned else "first-fit",
                res.metrics.avg_wait / 3600,
                res.metrics.max_wait / 86400,
                res.modes.avg_wait[list(res.modes.avg_wait)[2]] / 3600
                if res.modes.avg_wait else 0.0,
                res.metrics.utilization,
            ]
            for learned, res in rows
        ],
        title="Ablation: learned vs first-fit backfilling (DRAS-PG, theta)",
    )
    save_report(report_dir, "ablation_backfill", table)
    for _, res in rows:
        assert res.metrics.num_jobs > 0
        assert np.isfinite(res.metrics.avg_wait)


def test_ablation_entropy_collapse(benchmark, report_dir):
    """Without the entropy bonus, DRAS-PG degenerates into FCFS."""
    setup = system_setup("theta", SCALE, 0)
    scale = get_scale(SCALE)

    def run():
        out = {}
        fcfs = evaluate_method(FCFSEasy(), setup.test_trace,
                               setup.model.num_nodes)
        out["FCFS"] = fcfs
        for coef in (0.0, 0.05):
            agent = _train_variant(setup, scale, entropy_coef=coef)
            out[f"entropy={coef}"] = evaluate_method(
                agent, setup.test_trace, setup.model.num_nodes
            )
        return out

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    table = format_table(
        ["variant", "avg wait (h)", "max wait (d)"],
        [
            [name, r.metrics.avg_wait / 3600, r.metrics.max_wait / 86400]
            for name, r in results.items()
        ],
        title="Ablation: entropy regularization (DRAS-PG, theta)",
    )
    save_report(report_dir, "ablation_entropy", table)

    fcfs = results["FCFS"].metrics
    collapsed = results["entropy=0.0"].metrics
    regular = results["entropy=0.05"].metrics
    # the un-regularized policy converges to (or extremely near) the
    # FCFS schedule
    assert collapsed.avg_wait == pytest.approx(fcfs.avg_wait, rel=0.10)
    assert collapsed.max_wait == pytest.approx(fcfs.max_wait, rel=0.10)
    # the regularized policy escapes the clone and improves average wait
    assert regular.avg_wait < collapsed.avg_wait


def test_ablation_window_size(benchmark, report_dir):
    """The window bounds how far DRAS can look past the queue head."""
    setup = system_setup("theta", SCALE, 0)
    scale = get_scale(SCALE)

    def run():
        out = {}
        for window in (4, 16, 32):
            agent = _train_variant(setup, scale, window=window)
            out[window] = evaluate_method(
                agent, setup.test_trace, setup.model.num_nodes
            )
        return out

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    table = format_table(
        ["window W", "avg wait (h)", "max wait (d)", "utilization"],
        [
            [w, r.metrics.avg_wait / 3600, r.metrics.max_wait / 86400,
             r.metrics.utilization]
            for w, r in results.items()
        ],
        title="Ablation: window size (DRAS-PG, theta)",
    )
    save_report(report_dir, "ablation_window", table)
    for r in results.values():
        assert r.metrics.num_jobs == next(iter(results.values())).metrics.num_jobs


def test_ablation_easy_vs_conservative(benchmark, report_dir):
    """Heuristic-side ablation: EASY vs conservative backfilling."""
    setup = system_setup("theta", SCALE, 0)

    def run():
        return {
            s.name: evaluate_method(s, setup.test_trace, setup.model.num_nodes)
            for s in (FCFSEasy(), ConservativeBackfill())
        }

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    table = format_table(
        ["policy", "avg wait (h)", "max wait (d)", "backfilled jobs %",
         "utilization"],
        [
            [
                name,
                r.metrics.avg_wait / 3600,
                r.metrics.max_wait / 86400,
                100 * r.modes.job_share[
                    [m for m in r.modes.job_share if m.value == "backfilled"][0]
                ],
                r.metrics.utilization,
            ]
            for name, r in results.items()
        ],
        title="Ablation: EASY vs conservative backfilling (theta)",
    )
    save_report(report_dir, "ablation_conservative", table)

    easy = results["FCFS"].metrics
    conservative = results["Conservative"].metrics
    # conservative is stricter: it cannot backfill more aggressively
    # than EASY, so its average wait is no better than EASY's minus noise
    assert conservative.avg_wait >= 0.8 * easy.avg_wait
    assert conservative.num_jobs == easy.num_jobs
