"""Live telemetry bus: stamping, sinks, derived rates, HTTP exposition."""

import io
import json
import urllib.error
import urllib.request

import numpy as np
import pytest

from repro.obs import live as live_mod
from repro.obs.live import (
    LIVE_SCHEMA,
    LiveBus,
    LiveServer,
    ProgressSink,
    SnapshotWriter,
    global_live_bus,
    live_from_spec,
    set_global_live_bus,
)
from repro.obs.metrics import MetricsRegistry
from repro.obs.promtext import lint_prometheus
from repro.schedulers.fcfs import FCFSEasy
from repro.sim.cluster import Cluster
from repro.sim.engine import Engine, run_simulation
from repro.workload.models import ThetaModel


def _jobs(n=120, nodes=32, seed=0):
    model = ThetaModel.scaled(nodes)
    return model.generate(n, np.random.default_rng(seed))


class Collector:
    """A sink that records every snapshot it is handed."""

    def __init__(self):
        self.records = []
        self.closed = False

    def on_snapshot(self, record):
        self.records.append(record)

    def close(self):
        self.closed = True


class TestLiveBus:
    def test_publish_stamps_schema_seq_and_wall(self):
        bus = LiveBus()
        r1 = bus.publish("sim", {"done": 1})
        r2 = bus.publish("sim", {"done": 2})
        r3 = bus.publish("train", {"episode": 0})
        assert r1["schema"] == LIVE_SCHEMA and r1["kind"] == "sim"
        assert (r1["seq"], r2["seq"]) == (1, 2)   # per-kind, from 1
        assert r3["seq"] == 1                      # independent counter
        assert r1["wall"] <= r2["wall"]

    def test_snapshots_returns_latest_per_kind(self):
        bus = LiveBus()
        bus.publish("sim", {"done": 1})
        last = bus.publish("sim", {"done": 2})
        assert bus.snapshots() == {"sim": last}

    def test_derived_rate_progress_and_eta(self):
        bus = LiveBus()
        r1 = bus.publish("sim", {"done": 10, "total": 100, "events": 1000})
        r2 = bus.publish("sim", {"done": 30, "total": 100, "events": 5000})
        elapsed = r2["wall"] - r1["wall"]
        assert elapsed > 0
        d = bus.derived()
        assert d["live_sim_progress"] == pytest.approx(0.3)
        rate = d["live_sim_rate"]
        assert rate == pytest.approx(20 / elapsed)
        assert d["live_sim_events_per_s"] == pytest.approx(4000 / elapsed)
        assert d["live_sim_eta_s"] == pytest.approx(70 / rate)

    def test_derived_needs_two_snapshots_for_a_rate(self):
        bus = LiveBus()
        bus.publish("sim", {"done": 5, "total": 10})
        d = bus.derived()
        assert d["live_sim_progress"] == pytest.approx(0.5)
        assert "live_sim_rate" not in d and "live_sim_eta_s" not in d

    def test_broken_sink_is_detached_not_fatal(self):
        class Exploding:
            calls = 0

            def on_snapshot(self, record):
                type(self).calls += 1
                raise RuntimeError("boom")

        bus = LiveBus()
        good = bus.attach(Collector())
        bus.attach(Exploding())
        bus.publish("sim", {"done": 1})
        bus.publish("sim", {"done": 2})
        assert Exploding.calls == 1          # dropped after the first raise
        assert len(good.records) == 2        # the healthy sink kept both

    def test_close_closes_sinks_and_detaches(self):
        class Unclosable:
            def on_snapshot(self, record):
                pass

            def close(self):
                raise OSError("already gone")

        bus = LiveBus()
        sink = bus.attach(Collector())
        bus.attach(Unclosable())
        bus.close()                          # must not raise
        assert sink.closed
        bus.publish("sim", {"done": 1})
        assert sink.records == []            # detached by close()

    def test_registries_exposed_by_tag(self):
        bus = LiveBus()
        reg = MetricsRegistry()
        bus.register_metrics("engine", reg)
        assert bus.registries() == {"engine": reg}


class TestProgressSink:
    def _record(self, **fields):
        record = {"schema": LIVE_SCHEMA, "kind": "sim", "seq": 1, "wall": 0.0}
        record.update(fields)
        return record

    def test_format_line_fields_progress_and_eta(self):
        sink = ProgressSink(io.StringIO())
        sink.on_snapshot(self._record(t=100.0, events=500, queue_depth=3,
                                      done=20, total=80))
        line = sink.format_line(self._record(seq=2, wall=10.0, t=900.0,
                                             events=4500, queue_depth=7,
                                             done=40, total=80))
        assert line.startswith("[sim] t=900.0s ev=4500 q=7")
        assert "done 40/80 (50%)" in line
        # 20 done in 10s -> 2/s -> 40 remaining / 2 = 20s
        assert line.endswith("ETA 20s")

    def test_non_tty_renders_one_line_per_snapshot(self):
        stream = io.StringIO()
        sink = ProgressSink(stream, min_interval_s=0.0)
        sink.on_snapshot(self._record(done=1, total=2))
        sink.on_snapshot(self._record(seq=2, done=2, total=2))
        lines = stream.getvalue().splitlines()
        assert len(lines) == 2 and all(l.startswith("[sim]") for l in lines)

    def test_rate_limit_drops_interior_but_never_final(self):
        stream = io.StringIO()
        sink = ProgressSink(stream, min_interval_s=3600.0)
        sink.on_snapshot(self._record(done=1, total=3))
        sink.on_snapshot(self._record(seq=2, done=2, total=3))   # limited
        sink.on_snapshot(self._record(seq=3, done=3, total=3, final=True))
        lines = stream.getvalue().splitlines()
        assert len(lines) == 2
        assert "done 3/3" in lines[-1]

    def test_closed_stream_does_not_abort_the_run(self):
        stream = io.StringIO()
        sink = ProgressSink(stream, min_interval_s=0.0)
        stream.close()
        sink.on_snapshot(self._record(done=1, total=2))   # must not raise
        sink.close()


class TestSnapshotWriter:
    def test_shard_has_meta_header_then_sorted_snapshots(self, tmp_path):
        path = tmp_path / "shard.jsonl"
        writer = SnapshotWriter(path, source="w0")
        bus = LiveBus()
        bus.attach(writer)
        bus.publish("sim", {"done": 1, "total": 2})
        bus.close()
        lines = path.read_text().splitlines()
        meta = json.loads(lines[0])
        assert meta["type"] == "meta" and meta["schema"] == LIVE_SCHEMA
        assert meta["source"] == "w0" and "unix" in meta
        row = json.loads(lines[1])
        assert row["type"] == "snapshot" and row["source"] == "w0"
        assert row["kind"] == "sim" and row["done"] == 1
        # sorted keys -> byte-stable shards
        assert lines[1] == json.dumps(row, sort_keys=True)

    def test_default_source_names_the_pid(self, tmp_path):
        import os

        writer = SnapshotWriter(tmp_path / "s.jsonl")
        assert writer.source == f"pid{os.getpid()}"
        writer.close()

    def test_close_is_idempotent_and_stops_writes(self, tmp_path):
        path = tmp_path / "s.jsonl"
        writer = SnapshotWriter(path, source="w")
        writer.close()
        writer.close()
        writer.on_snapshot({"kind": "sim"})   # silently dropped
        assert len(path.read_text().splitlines()) == 1


class TestLiveServer:
    @pytest.fixture()
    def served(self):
        bus = LiveBus()
        reg = MetricsRegistry()
        reg.counter("engine.events").inc(7)
        reg.timer("engine.schedule_s").observe(0.01)
        bus.register_metrics("engine", reg)
        bus.publish("sim", {"done": 10, "total": 40, "events": 100})
        bus.publish("sim", {"done": 20, "total": 40, "events": 200})
        server = LiveServer(bus, port=0).start()
        yield bus, server
        server.close()

    def _get(self, server, path):
        with urllib.request.urlopen(
                f"http://127.0.0.1:{server.port}{path}", timeout=5) as resp:
            return resp.status, resp.headers, resp.read().decode("utf-8")

    def test_metrics_page_is_valid_prometheus(self, served):
        _, server = served
        status, headers, body = self._get(server, "/metrics")
        assert status == 200
        assert headers["Content-Type"].startswith("text/plain; version=0.0.4")
        assert lint_prometheus(body) == []
        assert "repro_engine_engine_events 7" in body
        assert "repro_live_sim_progress 0.5" in body

    def test_status_reports_snapshots_derived_and_metrics(self, served):
        bus, server = served
        status, headers, body = self._get(server, "/status")
        assert status == 200
        assert headers["Content-Type"].startswith("application/json")
        doc = json.loads(body)
        assert doc["schema"] == LIVE_SCHEMA
        assert doc["snapshots"]["sim"]["done"] == 20
        assert doc["derived"]["live_sim_progress"] == pytest.approx(0.5)
        assert doc["metrics"]["engine"]["engine.events"] == 7

    def test_unknown_path_is_404(self, served):
        _, server = served
        with pytest.raises(urllib.error.HTTPError) as err:
            self._get(server, "/nope")
        assert err.value.code == 404

    def test_close_releases_the_socket(self, served):
        _, server = served
        port = server.port
        server.close()
        with pytest.raises(urllib.error.URLError):
            urllib.request.urlopen(
                f"http://127.0.0.1:{port}/metrics", timeout=1)


class TestLiveFromSpec:
    @pytest.mark.parametrize("spec", ["", "0", "off", "  off  "])
    def test_disabled_specs(self, spec):
        assert live_from_spec(spec) is None

    @pytest.mark.parametrize("spec", ["1", "progress"])
    def test_progress_specs(self, spec):
        bus = live_from_spec(spec, stream=io.StringIO())
        assert isinstance(bus._sinks[0], ProgressSink)
        assert bus.server is None
        bus.close()

    def test_port_spec_starts_a_server(self):
        bus = live_from_spec("0", stream=io.StringIO())
        assert bus is None
        bus = live_from_spec(str(_free_port()), stream=io.StringIO())
        try:
            assert bus.server is not None
            kinds = {type(s) for s in bus._sinks}
            assert ProgressSink in kinds and LiveServer in kinds
            with urllib.request.urlopen(
                    f"http://127.0.0.1:{bus.server.port}/status",
                    timeout=5) as resp:
                assert resp.status == 200
        finally:
            bus.close()

    def test_invalid_port_rejected(self):
        with pytest.raises(ValueError, match="invalid live port"):
            live_from_spec("70000")

    def test_path_spec_attaches_a_snapshot_writer(self, tmp_path):
        path = tmp_path / "shard.jsonl"
        bus = live_from_spec(str(path), source="w3")
        assert isinstance(bus._sinks[0], SnapshotWriter)
        bus.publish("sim", {"done": 1})
        bus.close()
        assert json.loads(path.read_text().splitlines()[0])["source"] == "w3"


class TestGlobalBus:
    @pytest.fixture()
    def fresh_global(self, monkeypatch):
        monkeypatch.setattr(live_mod, "_GLOBAL", None)
        monkeypatch.setattr(live_mod, "_GLOBAL_LOADED", False)
        yield monkeypatch

    def test_unset_env_means_no_bus(self, fresh_global):
        fresh_global.delenv("REPRO_LIVE", raising=False)
        assert global_live_bus() is None

    def test_env_spec_builds_and_caches_the_bus(self, fresh_global):
        fresh_global.setenv("REPRO_LIVE", "progress")
        bus = global_live_bus()
        assert isinstance(bus._sinks[0], ProgressSink)
        assert global_live_bus() is bus      # cached, env not re-read
        bus.close()

    def test_set_global_returns_previous_and_blocks_env(self, fresh_global):
        fresh_global.setenv("REPRO_LIVE", "progress")
        mine = LiveBus()
        assert set_global_live_bus(mine) is None
        assert global_live_bus() is mine
        assert set_global_live_bus(None) is mine
        assert global_live_bus() is None     # env is NOT re-read


def _free_port():
    import socket

    with socket.socket() as sock:
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]


class TestEngineIntegration:
    def test_engine_publishes_on_event_cadence(self):
        bus = LiveBus()
        sink = bus.attach(Collector())
        run_simulation(32, FCFSEasy(), _jobs(), live=bus, live_every=100)
        assert len(sink.records) >= 2
        assert all(r["kind"] == "sim" for r in sink.records)
        seqs = [r["seq"] for r in sink.records]
        assert seqs == list(range(1, len(seqs) + 1))
        final = sink.records[-1]
        assert final.get("final") is True
        assert final["done"] == final["total"] == 120
        assert {"t", "events", "queue_depth", "running",
                "utilization"} <= set(final)
        assert "engine" in bus.registries()

    def test_live_run_is_bit_identical_to_dark(self):
        jobs = _jobs()
        dark = run_simulation(32, FCFSEasy(), [j.copy_fresh() for j in jobs])
        bus = LiveBus()
        bus.attach(Collector())
        watched = run_simulation(32, FCFSEasy(),
                                 [j.copy_fresh() for j in jobs],
                                 live=bus, live_every=50)
        for a, b in zip(dark.jobs, watched.jobs):
            assert (a.start_time, a.end_time, a.mode) == (
                b.start_time, b.end_time, b.mode)
        assert dark.makespan == watched.makespan
        assert dark.num_instances == watched.num_instances

    def test_live_every_must_be_positive(self):
        with pytest.raises(ValueError, match="live_every"):
            Engine(Cluster(8), FCFSEasy(), _jobs(8, 8), live_every=0)


class TestTrainerIntegration:
    def test_train_publishes_one_snapshot_per_episode(self):
        from repro.core.config import DRASConfig
        from repro.core.dras_pg import DRASPG
        from repro.rl.trainer import Trainer
        from tests.conftest import make_job

        config = DRASConfig(num_nodes=16, window=4, hidden1=16, hidden2=8,
                            seed=0, objective="capability", time_scale=1000.0)
        jobs = [make_job(size=4, walltime=50.0, submit=float(i * 10))
                for i in range(8)]
        bus = LiveBus()
        sink = bus.attach(Collector())
        trainer = Trainer(DRASPG(config), 16, live=bus)
        trainer.train([("phase", jobs), ("phase", jobs)])
        assert [r["kind"] for r in sink.records] == ["train", "train"]
        assert [r["episode"] for r in sink.records] == [0, 1]
        assert sink.records[0]["done"] == 1 and sink.records[0]["total"] == 2
        assert sink.records[-1].get("final") is True
        assert "trainer" in bus.registries()
