#!/usr/bin/env python3
"""Ratchet gate for the repro.check static analyzer.

Compares the current strict findings over ``src/repro`` against the
committed baseline (``check_baseline.json`` at the repo root) and
enforces the one-way ratchet:

* a finding **not** in the baseline fails the build (exit 1) — new
  debt is never admitted;
* baseline entries that no longer fire are reported as *stale*; run
  with ``--update`` to shrink the baseline.  ``--update`` refuses to
  *grow* the baseline — fixing or explicitly suppressing the finding
  (``# repro: noqa[slug]``) is the only way forward.

Usage::

    python scripts/check_ratchet.py            # gate (CI)
    python scripts/check_ratchet.py --update   # shrink a stale baseline

Exit codes: 0 — at or below baseline; 1 — new findings (or an --update
that would grow the baseline); 2 — configuration error.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.check import LintConfig, analyze_project, lint_paths  # noqa: E402
from repro.check.project import project_rules  # noqa: E402
from repro.check.report import (  # noqa: E402
    baseline_key,
    diff_baseline,
    load_baseline,
    save_baseline,
)

SOURCE_ROOT = REPO_ROOT / "src" / "repro"
BASELINE_PATH = REPO_ROOT / "check_baseline.json"

#: rule IDs the ratchet *requires* to be registered.  A refactor that
#: silently drops a rule family would otherwise pass the gate with the
#: dropped rules checking nothing; growing the families here is part
#: of adding one.
EXPECTED_RULE_IDS = frozenset({
    # RPR5xx profile-guided performance
    "RPR501", "RPR502", "RPR503", "RPR504", "RPR505", "RPR506", "RPR507",
    # RPR6xx determinism taint (effect inference)
    "RPR601", "RPR602", "RPR603", "RPR604", "RPR605", "RPR606", "RPR607",
    "RPR608",
})


def missing_rules() -> list[str]:
    """Expected rule IDs that failed to register (empty when healthy)."""
    registered = {rule.id for rule in project_rules()}
    return sorted(EXPECTED_RULE_IDS - registered)


def current_findings():
    """Strict findings (per-file + whole-program) over ``src/repro``."""
    config = LintConfig()
    violations = lint_paths([SOURCE_ROOT], config)
    violations.extend(analyze_project(SOURCE_ROOT, config))
    violations.sort(key=lambda v: (str(v.path), v.line, v.col, v.rule_id))
    return violations


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--update", action="store_true",
                        help="rewrite the baseline when it can shrink")
    parser.add_argument("--baseline", default=str(BASELINE_PATH),
                        help="baseline path (default: repo-root "
                             "check_baseline.json)")
    args = parser.parse_args(argv)

    dropped = missing_rules()
    if dropped:
        print("expected rule(s) not registered — the ratchet would gate "
              f"nothing for them: {', '.join(dropped)}", file=sys.stderr)
        return 2

    try:
        baseline = load_baseline(args.baseline)
    except FileNotFoundError:
        print(f"baseline {args.baseline} does not exist; create it with "
              "--update after reviewing the findings", file=sys.stderr)
        return 2
    except ValueError as exc:
        print(str(exc), file=sys.stderr)
        return 2

    violations = current_findings()
    new, stale = diff_baseline(violations, baseline)

    if new:
        print(f"{len(new)} new finding(s) beyond the baseline:", file=sys.stderr)
        for violation in new:
            print(f"  {violation.format()}", file=sys.stderr)
        print("fix them or suppress with `# repro: noqa[slug]`; the baseline "
              "only ratchets down", file=sys.stderr)
        return 1

    if stale:
        print(f"{sum(stale.values())} stale baseline entr(ies) no longer fire:")
        for key, count in sorted(stale.items()):
            print(f"  {key} (x{count})")
        if args.update:
            current_keys = {baseline_key(v) for v in violations}
            grown = current_keys - set(baseline)
            if grown:  # unreachable when `new` is empty, but stay defensive
                print("refusing to grow the baseline", file=sys.stderr)
                return 1
            save_baseline(args.baseline, violations)
            print(f"baseline shrunk to {len(violations)} finding(s)")
        else:
            print("run with --update to shrink the baseline")
        return 0

    print(f"ratchet OK: {len(violations)} finding(s), all baselined"
          if violations else "ratchet OK: no findings")
    return 0


if __name__ == "__main__":
    sys.exit(main())
