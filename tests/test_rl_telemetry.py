"""Training telemetry: records, anomaly flags, sanitizer escalation."""

import json
import math

import numpy as np
import pytest

from repro.check.sanitize import SanitizerError
from repro.core.config import DRASConfig
from repro.core.dras_pg import DRASPG
from repro.rl.telemetry import (
    ANOMALY_NAN_GRAD,
    ANOMALY_REWARD_COLLAPSE,
    ANOMALY_UTILIZATION_DROP,
    TELEMETRY_SCHEMA,
    TelemetryWarning,
    TelemetryWriter,
    detect_anomalies,
    episode_records,
    raise_hard_anomalies,
    read_telemetry,
)
from repro.rl.trainer import Trainer
from repro.workload.models import ThetaModel

NODES = 16


def _agent(seed=0, window=4):
    config = DRASConfig.scaled(
        NODES, window=window, time_scale=ThetaModel.MAX_RUNTIME, seed=seed
    )
    return DRASPG(config)


def _jobsets(n_sets=2, jobs=30, seed=0):
    model = ThetaModel.scaled(NODES)
    rng = np.random.default_rng(seed)
    return [("sampled", model.generate(jobs, rng)) for _ in range(n_sets)]


class TestWriterReader:
    def test_meta_line_and_round_trip(self, tmp_path):
        path = tmp_path / "t.jsonl"
        with TelemetryWriter(path, meta={"agent": "pg"}) as writer:
            writer.write_episode({"episode": 0, "loss": 1.5})
            writer.write_episode({"episode": 1, "loss": float("nan")})
        records = read_telemetry(path)
        assert records[0]["schema"] == TELEMETRY_SCHEMA
        assert records[0]["agent"] == "pg"
        episodes = episode_records(records)
        assert [r["episode"] for r in episodes] == [0, 1]
        assert math.isnan(episodes[1]["loss"])  # NaN survives the round trip

    def test_write_after_close_rejected(self, tmp_path):
        writer = TelemetryWriter(tmp_path / "t.jsonl")
        writer.close()
        writer.close()  # idempotent
        with pytest.raises(ValueError, match="closed"):
            writer.write_episode({})

    def test_lenient_read_skips_garbage(self, tmp_path):
        path = tmp_path / "t.jsonl"
        path.write_text('{"type": "meta"}\nnot json\n[1, 2]\n'
                        '{"type": "episode", "episode": 0}\n')
        with pytest.warns(TelemetryWarning):
            records = read_telemetry(path)
        assert len(records) == 2
        with pytest.raises(ValueError, match="invalid JSON"):
            read_telemetry(path, strict=True)


class TestAnomalyDetection:
    def test_nan_grad_flagged(self):
        assert detect_anomalies({"grad_norm": float("nan")}) == [
            ANOMALY_NAN_GRAD]
        assert detect_anomalies({"loss": float("inf")}) == [ANOMALY_NAN_GRAD]
        assert detect_anomalies({"grad_norm": 1.0, "loss": 2.0}) == []

    def test_reward_collapse_needs_history(self):
        history = [{"train_reward": 10.0 + i * 0.1} for i in range(4)]
        collapsed = {"train_reward": -50.0}
        assert ANOMALY_REWARD_COLLAPSE in detect_anomalies(collapsed, history)
        normal = {"train_reward": 10.2}
        assert detect_anomalies(normal, history) == []
        # too little history: never flagged
        assert detect_anomalies(collapsed, history[:2]) == []

    def test_utilization_drop(self):
        history = [{"utilization": 0.8} for _ in range(3)]
        assert detect_anomalies({"utilization": 0.1}, history) == [
            ANOMALY_UTILIZATION_DROP]
        assert detect_anomalies({"utilization": 0.7}, history) == []

    def test_hard_escalation_only_under_sanitizer(self, monkeypatch):
        record = {"episode": 3, "phase": "real", "loss": float("nan")}
        flags = [ANOMALY_NAN_GRAD]
        monkeypatch.setenv("REPRO_SANITIZE", "1")
        with pytest.raises(SanitizerError, match="episode 3"):
            raise_hard_anomalies(flags, record)
        monkeypatch.delenv("REPRO_SANITIZE")
        raise_hard_anomalies(flags, record)  # no-op when sanitizer off
        # soft flags never raise, sanitizer or not
        monkeypatch.setenv("REPRO_SANITIZE", "1")
        raise_hard_anomalies([ANOMALY_REWARD_COLLAPSE], record)


class TestTrainerIntegration:
    def test_records_written_per_episode(self, tmp_path):
        path = tmp_path / "train.jsonl"
        trainer = Trainer(_agent(), NODES, telemetry=path)
        trainer.train(_jobsets())
        episodes = episode_records(read_telemetry(path))
        assert len(episodes) == 2
        first = episodes[0]
        assert first["phase"] == "sampled"
        assert first["num_jobs"] == 30
        assert math.isfinite(first["train_reward"])
        assert math.isfinite(first["loss"])
        assert math.isfinite(first["grad_norm"]) and first["grad_norm"] >= 0
        assert math.isfinite(first["entropy"]) and first["entropy"] >= 0
        assert 0.0 <= first["utilization"] <= 1.0
        assert first["queue_depth_max"] >= first["queue_depth_min"] >= 0
        assert first["instances"] > 0
        assert first["anomalies"] == []

    def test_telemetry_enables_agent_collectors(self, tmp_path):
        agent = _agent()
        assert not agent.optimizer.track_grad_norm
        assert not agent.core.collect_stats
        Trainer(agent, NODES, telemetry=tmp_path / "t.jsonl")
        assert agent.optimizer.track_grad_norm
        assert agent.core.collect_stats

    def test_telemetry_off_is_default(self):
        agent = _agent()
        trainer = Trainer(agent, NODES)
        trainer.train(_jobsets(n_sets=1))
        assert trainer.telemetry is None
        assert not agent.optimizer.track_grad_norm

    def test_telemetry_does_not_perturb_training(self, tmp_path):
        """Telemetry is observe-only: the learned weights are identical."""
        plain = _agent(seed=7)
        Trainer(plain, NODES).train(_jobsets(seed=7))
        observed = _agent(seed=7)
        Trainer(observed, NODES,
                telemetry=tmp_path / "t.jsonl").train(_jobsets(seed=7))
        for key, value in plain.state_dict().items():
            np.testing.assert_array_equal(value, observed.state_dict()[key])

    def test_seeded_nan_raises_through_sanitizer(self, tmp_path, monkeypatch):
        """A poisoned learning signal aborts under REPRO_SANITIZE=1 with
        the evidence already durable in the telemetry file."""
        path = tmp_path / "train.jsonl"
        agent = _agent()
        trainer = Trainer(agent, NODES, telemetry=path)
        # poison the recorded loss after the first update; the gradient
        # itself stays finite so the Adam-level check does not fire first
        original = agent.core.update

        def poisoned_update():
            loss = original()
            agent.core.losses[-1] = float("nan")
            return loss

        monkeypatch.setattr(agent.core, "update", poisoned_update)
        monkeypatch.setenv("REPRO_SANITIZE", "1")
        with pytest.raises(SanitizerError, match="non-finite"):
            trainer.train(_jobsets())
        episodes = episode_records(read_telemetry(path))
        assert episodes, "the flagged record must be durable"
        assert ANOMALY_NAN_GRAD in episodes[-1]["anomalies"]

    def test_seeded_nan_flagged_but_not_raised_without_sanitizer(
            self, tmp_path, monkeypatch):
        path = tmp_path / "train.jsonl"
        agent = _agent()
        trainer = Trainer(agent, NODES, telemetry=path)
        original = agent.core.update

        def poisoned_update():
            loss = original()
            agent.core.losses[-1] = float("nan")
            return loss

        monkeypatch.setattr(agent.core, "update", poisoned_update)
        monkeypatch.delenv("REPRO_SANITIZE", raising=False)
        history = trainer.train(_jobsets())
        assert len(history.episodes) == 2  # training ran to completion
        episodes = episode_records(read_telemetry(path))
        assert all(ANOMALY_NAN_GRAD in r["anomalies"] for r in episodes)

    def test_crashed_training_leaves_readable_telemetry(self, tmp_path):
        """Per-record flushing: a crash mid-training loses nothing."""
        path = tmp_path / "train.jsonl"
        trainer = Trainer(_agent(), NODES, telemetry=path)
        jobsets = _jobsets(n_sets=3)
        calls = {"n": 0}
        original = trainer.run_episode

        def crashing(jobset, episode=0):
            if calls["n"] == 2:
                raise RuntimeError("simulated crash")
            calls["n"] += 1
            return original(jobset, episode=episode)

        trainer.run_episode = crashing
        with pytest.raises(RuntimeError, match="simulated crash"):
            trainer.train(jobsets)
        # no close() ever ran, yet both completed episodes are on disk
        episodes = episode_records(read_telemetry(path))
        assert [r["episode"] for r in episodes] == [0, 1]
        for line in path.read_text().splitlines():
            json.loads(line)  # every line parses
