"""Unit + property tests for loss heads and the masked softmax."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.nn.losses import (
    masked_softmax,
    mse_loss,
    policy_gradient_loss,
    sample_from_probs,
)


class TestMaskedSoftmax:
    def test_sums_to_one(self):
        probs = masked_softmax(np.array([1.0, 2.0, 3.0]), np.array([True, True, True]))
        assert probs.sum() == pytest.approx(1.0)

    def test_masked_entries_zero(self):
        probs = masked_softmax(
            np.array([1.0, 100.0, 3.0]), np.array([True, False, True])
        )
        assert probs[1] == 0.0
        assert probs.sum() == pytest.approx(1.0)

    def test_batch_rows_independent(self):
        logits = np.array([[1.0, 2.0], [5.0, 5.0]])
        mask = np.array([[True, True], [True, False]])
        probs = masked_softmax(logits, mask)
        assert probs[1, 0] == pytest.approx(1.0)
        assert probs[0].sum() == pytest.approx(1.0)

    def test_all_masked_row_rejected(self):
        with pytest.raises(ValueError, match="valid action"):
            masked_softmax(np.array([1.0, 2.0]), np.array([False, False]))

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError, match="mismatch"):
            masked_softmax(np.ones(3), np.ones(2, dtype=bool))

    def test_extreme_logits_stable(self):
        probs = masked_softmax(
            np.array([1e6, -1e6, 0.0]), np.array([True, True, True])
        )
        assert np.isfinite(probs).all()
        assert probs[0] == pytest.approx(1.0)

    @settings(max_examples=50, deadline=None)
    @given(
        logits=hnp.arrays(np.float64, (5,), elements=st.floats(-50, 50)),
        valid=st.lists(st.booleans(), min_size=5, max_size=5).filter(any),
    )
    def test_property_valid_distribution(self, logits, valid):
        mask = np.array(valid)
        probs = masked_softmax(logits, mask)
        assert probs.sum() == pytest.approx(1.0)
        assert np.all(probs >= 0)
        assert np.all(probs[~mask] == 0)
        # monotonicity among valid entries (strictly larger logit ->
        # at-least-as-large probability; ties can order arbitrarily)
        vidx = np.flatnonzero(mask)
        for i in vidx:
            for j in vidx:
                if logits[i] > logits[j] + 1e-9:
                    assert probs[i] >= probs[j] - 1e-12


class TestSampleFromProbs:
    def test_deterministic_on_point_mass(self, rng):
        assert sample_from_probs(np.array([0.0, 1.0, 0.0]), rng) == 1

    def test_respects_distribution(self, rng):
        counts = np.zeros(2)
        for _ in range(2000):
            counts[sample_from_probs(np.array([0.25, 0.75]), rng)] += 1
        assert counts[1] / 2000 == pytest.approx(0.75, abs=0.05)


class TestPolicyGradientLoss:
    def test_loss_value(self):
        logits = np.array([[0.0, 0.0]])
        masks = np.ones((1, 2), dtype=bool)
        loss, _ = policy_gradient_loss(logits, masks, np.array([0]), np.array([1.0]))
        assert loss == pytest.approx(-np.log(0.5))

    def test_gradient_matches_numeric(self, rng):
        logits = rng.normal(size=(4, 5))
        masks = np.ones((4, 5), dtype=bool)
        masks[0, 3] = False
        actions = np.array([0, 2, 4, 1])
        adv = rng.normal(size=4)
        _, grad = policy_gradient_loss(logits, masks, actions, adv)
        eps = 1e-6
        for i in range(4):
            for j in range(5):
                if not masks[i, j]:
                    assert grad[i, j] == 0.0
                    continue
                pert = logits.copy()
                pert[i, j] += eps
                lp, _ = policy_gradient_loss(pert, masks, actions, adv)
                pert[i, j] -= 2 * eps
                lm, _ = policy_gradient_loss(pert, masks, actions, adv)
                numeric = (lp - lm) / (2 * eps)
                assert grad[i, j] == pytest.approx(numeric, abs=1e-5)

    def test_zero_advantage_zero_gradient(self):
        logits = np.array([[1.0, 2.0]])
        masks = np.ones((1, 2), dtype=bool)
        _, grad = policy_gradient_loss(logits, masks, np.array([1]), np.array([0.0]))
        assert np.allclose(grad, 0.0)

    def test_positive_advantage_raises_chosen_prob(self):
        logits = np.array([[0.0, 0.0]])
        masks = np.ones((1, 2), dtype=bool)
        _, grad = policy_gradient_loss(logits, masks, np.array([0]), np.array([1.0]))
        # descending the loss raises logit 0 relative to logit 1
        assert grad[0, 0] < 0 < grad[0, 1]

    def test_masked_action_rejected(self):
        logits = np.array([[0.0, 0.0]])
        masks = np.array([[True, False]])
        with pytest.raises(ValueError, match="invalid"):
            policy_gradient_loss(logits, masks, np.array([1]), np.array([1.0]))

    def test_shape_validation(self):
        with pytest.raises(ValueError, match="batch"):
            policy_gradient_loss(
                np.ones((2, 3)), np.ones((2, 3), dtype=bool),
                np.array([0]), np.array([1.0, 1.0]),
            )


class TestMSELoss:
    def test_value_and_gradient(self):
        pred = np.array([[1.0], [3.0]])
        target = np.array([[0.0], [1.0]])
        loss, grad = mse_loss(pred, target)
        assert loss == pytest.approx((1.0 + 4.0) / 2)
        assert grad == pytest.approx(np.array([[1.0], [2.0]]))

    def test_perfect_prediction(self):
        loss, grad = mse_loss(np.ones((3, 1)), np.ones((3, 1)))
        assert loss == 0.0
        assert np.allclose(grad, 0.0)

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            mse_loss(np.ones((2, 1)), np.ones((3, 1)))

    @settings(max_examples=30, deadline=None)
    @given(
        pred=hnp.arrays(np.float64, (4,), elements=st.floats(-10, 10)),
        target=hnp.arrays(np.float64, (4,), elements=st.floats(-10, 10)),
    )
    def test_property_nonnegative_and_gradient_direction(self, pred, target):
        loss, grad = mse_loss(pred, target)
        assert loss >= 0
        # one gradient step with tiny lr cannot increase the loss
        stepped, _ = mse_loss(pred - 1e-4 * grad, target)
        assert stepped <= loss + 1e-12
