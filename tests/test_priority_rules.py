"""Unit tests for the priority-rule scheduler family."""

import pytest

from repro.schedulers import ConservativeBackfill, f1_wfp, ljf, sjf, smallest_area_first, unicef
from repro.schedulers.priority_rules import RuleScheduler
from repro.sim.engine import run_simulation
from repro.sim.job import JobState
from tests.conftest import make_job


class TestSJF:
    def test_orders_by_walltime(self):
        blocker = make_job(size=4, walltime=50.0, submit=0.0)
        long = make_job(size=4, walltime=1000.0, submit=1.0)
        short = make_job(size=4, walltime=10.0, submit=2.0)
        run_simulation(4, sjf(), [blocker, long, short])
        assert short.start_time < long.start_time

    def test_tie_breaks_by_arrival(self):
        a = make_job(size=4, walltime=100.0, submit=0.0)
        b = make_job(size=4, walltime=100.0, submit=1.0)
        run_simulation(4, sjf(), [a, b])
        assert a.start_time < b.start_time

    def test_reserves_blocked_head(self):
        from repro.sim.job import ExecMode

        blocker = make_job(size=4, walltime=100.0, submit=0.0)
        short_big = make_job(size=4, walltime=10.0, submit=1.0)
        run_simulation(4, sjf(), [blocker, short_big])
        assert short_big.mode is ExecMode.RESERVED


class TestLJF:
    def test_orders_by_size_descending(self):
        blocker = make_job(size=4, walltime=50.0, submit=0.0)
        small = make_job(size=1, walltime=100.0, submit=1.0)
        large = make_job(size=4, walltime=100.0, submit=2.0)
        run_simulation(4, ljf(), [blocker, small, large])
        assert large.start_time < small.start_time


class TestSAF:
    def test_orders_by_area(self):
        wide_short = make_job(size=4, walltime=10.0, submit=0.0)   # area 40
        narrow_long = make_job(size=1, walltime=30.0, submit=0.0)  # area 30
        run_simulation(4, smallest_area_first(), [wide_short, narrow_long])
        # both fit at once here; force contention
        a = make_job(size=4, walltime=10.0, submit=0.0)    # area 40
        b = make_job(size=3, walltime=10.0, submit=0.0)    # area 30
        run_simulation(4, smallest_area_first(), [a, b])
        assert b.start_time < a.start_time


class TestAgingRules:
    def test_wfp_ages_waiting_jobs(self):
        """A long-waiting job eventually outranks fresher short jobs."""
        sched = f1_wfp()
        old_large = make_job(size=4, walltime=100.0, submit=0.0)
        # keep the system busy so old_large queues for a while
        blocker = make_job(size=4, walltime=500.0, submit=0.0)
        fresh = make_job(size=4, walltime=10.0, submit=499.0)
        run_simulation(4, sched, [blocker, old_large, fresh])
        assert old_large.start_time < fresh.start_time

    def test_unicef_favours_small_short(self):
        sched = unicef()
        small_short = make_job(size=1, walltime=10.0, submit=0.0)
        big_long = make_job(size=4, walltime=1000.0, submit=0.0)
        # contention via a blocker
        blocker = make_job(size=4, walltime=50.0, submit=0.0)
        run_simulation(4, sched, [blocker, big_long, small_short])
        assert small_short.start_time <= big_long.start_time


class TestFamilyInvariants:
    @pytest.mark.parametrize(
        "factory", [sjf, ljf, smallest_area_first, f1_wfp, unicef],
        ids=["sjf", "ljf", "saf", "wfp", "unicef"],
    )
    def test_all_jobs_finish(self, factory):
        jobs = [make_job(size=s, walltime=20.0 * (i + 1), submit=float(i * 5))
                for i, s in enumerate((2, 8, 1, 4, 6, 3))]
        result = run_simulation(8, factory(), jobs)
        assert all(j.state is JobState.FINISHED for j in result.jobs)

    def test_custom_rule(self):
        fifo_clone = RuleScheduler(lambda j, now: j.submit_time, "FIFO2")
        jobs = [make_job(size=4, walltime=10.0, submit=float(i)) for i in range(3)]
        run_simulation(4, fifo_clone, jobs)
        starts = [j.start_time for j in jobs]
        assert starts == sorted(starts)

    def test_conservative_exported(self):
        assert ConservativeBackfill().name == "Conservative"
