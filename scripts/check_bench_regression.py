#!/usr/bin/env python
"""Compare fresh BENCH_*.json results against committed baselines.

Usage::

    python scripts/check_bench_regression.py \
        --current BENCH_sim.json [--baseline path | --git-ref HEAD] \
        [--tolerance 0.20] [--github]

The baseline defaults to the committed copy of the same file name at
``--git-ref`` (default ``HEAD``), fetched via ``git show``.  A benchmark
*regresses* when its throughput (``events_per_s`` / ``steps_per_s``)
falls more than ``--tolerance`` (default 20%) below the baseline.
Speedups and new benchmarks are reported but never fail the check.

Exit status: 0 when no benchmark regresses, 1 otherwise.  The compare
logic lives in :func:`compare_docs` so tests (``pytest -m bench``) can
reuse it; see ``docs/benchmarks.md``.

With ``--github`` (implied when the ``GITHUB_ACTIONS`` environment
variable is set) the script additionally emits GitHub Actions workflow
commands: ``::error`` for each regression and ``::warning`` for
benchmarks inside the warning band (within 5 percentage points of the
tolerance) or missing a baseline, so results surface as PR annotations
without parsing the log.
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
from dataclasses import dataclass
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.obs.bench import validate_bench_doc  # noqa: E402

#: default relative tolerance before a slowdown counts as a regression
DEFAULT_TOLERANCE = 0.20

#: extra slack past the tolerance that still earns a near-threshold warning
WARNING_BAND = 0.05


def _annotation(level: str, message: str) -> str:
    """One GitHub Actions workflow command (``::error``/``::warning``).

    Newlines would terminate the command early, so they are escaped the
    way the runner expects (%0A).
    """
    escaped = message.replace("%", "%25").replace("\n", "%0A")
    return f"::{level} title=bench regression check::{escaped}"


@dataclass(frozen=True)
class Comparison:
    """Baseline-vs-current rates for one benchmark."""

    name: str
    rate_key: str
    baseline: float
    current: float

    @property
    def ratio(self) -> float:
        """current / baseline (> 1 means faster)."""
        return self.current / self.baseline

    def regressed(self, tolerance: float) -> bool:
        """Whether the slowdown exceeds ``tolerance``."""
        return self.ratio < 1.0 - tolerance


def _rates(doc: dict) -> dict[str, tuple[str, float]]:
    out = {}
    for entry in doc.get("benchmarks", []):
        for key in ("events_per_s", "steps_per_s"):
            if key in entry:
                out[entry["name"]] = (key, float(entry[key]))
    return out


def compare_docs(baseline: dict, current: dict) -> list[Comparison]:
    """Pair up benchmarks by name; unmatched names are skipped.

    Both documents are schema-validated first (:func:`validate_bench_doc`);
    a ``ValueError`` names the offending document.
    """
    for label, doc in (("baseline", baseline), ("current", current)):
        problems = validate_bench_doc(doc)
        if problems:
            raise ValueError(f"invalid {label} document: {problems}")
    base_rates = _rates(baseline)
    comparisons = []
    for name, (key, rate) in _rates(current).items():
        if name in base_rates:
            comparisons.append(
                Comparison(name, key, baseline=base_rates[name][1], current=rate)
            )
    return comparisons


def load_baseline_from_git(filename: str, ref: str = "HEAD") -> dict:
    """The committed copy of ``filename`` at ``ref``, via ``git show``."""
    proc = subprocess.run(
        ["git", "show", f"{ref}:{filename}"],
        cwd=REPO_ROOT,
        capture_output=True,
        text=True,
        timeout=30,
    )
    if proc.returncode != 0:
        raise FileNotFoundError(
            f"no committed {filename} at {ref}: {proc.stderr.strip()}"
        )
    return json.loads(proc.stdout)


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit status."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--current", required=True,
                        help="freshly generated BENCH_*.json")
    parser.add_argument("--baseline", default=None,
                        help="baseline file (default: committed copy via git)")
    parser.add_argument("--git-ref", default="HEAD",
                        help="ref for the committed baseline (default: HEAD)")
    parser.add_argument("--tolerance", type=float, default=DEFAULT_TOLERANCE,
                        help="allowed relative slowdown (default: 0.20)")
    parser.add_argument("--github", action="store_true",
                        help="emit GitHub Actions ::error/::warning "
                             "annotations (implied under GITHUB_ACTIONS)")
    args = parser.parse_args(argv)
    github = args.github or bool(os.environ.get("GITHUB_ACTIONS"))

    current_path = Path(args.current)
    current = json.loads(current_path.read_text(encoding="utf-8"))
    if args.baseline is not None:
        baseline = json.loads(Path(args.baseline).read_text(encoding="utf-8"))
    else:
        baseline = load_baseline_from_git(current_path.name, args.git_ref)

    comparisons = compare_docs(baseline, current)
    if not comparisons:
        print("no overlapping benchmarks to compare")
        return 1

    failed = False
    for comp in comparisons:
        status = "ok"
        if comp.regressed(args.tolerance):
            status = "REGRESSION"
            failed = True
            if github:
                print(_annotation(
                    "error",
                    f"{comp.name} regressed: {comp.baseline:,.0f} -> "
                    f"{comp.current:,.0f} {comp.rate_key} "
                    f"({comp.ratio:.2f}x, tolerance {args.tolerance:.0%})",
                ))
        elif comp.regressed(args.tolerance - WARNING_BAND):
            status = "near threshold"
            if github:
                print(_annotation(
                    "warning",
                    f"{comp.name} is within {WARNING_BAND:.0%} of the "
                    f"regression threshold ({comp.ratio:.2f}x of baseline)",
                ))
        elif comp.ratio > 1.0 + args.tolerance:
            status = "faster"
        print(
            f"{comp.name:32s} {comp.baseline:14,.0f} -> {comp.current:14,.0f} "
            f"{comp.rate_key} ({comp.ratio:6.2f}x) {status}"
        )
    new = set(_rates(current)) - {c.name for c in comparisons}
    for name in sorted(new):
        print(f"{name:32s} (new benchmark, no baseline)")
        if github:
            print(_annotation(
                "warning", f"{name}: new benchmark with no baseline"))
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
