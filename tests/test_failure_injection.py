"""Failure-injection tests: the engine must reject corrupt behaviour.

A simulator that silently accepts impossible schedules produces
plausible-looking but meaningless results; every injected fault below
must surface as a loud, specific error.
"""

import numpy as np
import pytest

from repro.schedulers import FCFSEasy
from repro.schedulers.base import BaseScheduler
from repro.sim.cluster import Cluster
from repro.sim.engine import Engine, SimulationError, run_simulation
from repro.sim.job import ExecMode, JobState
from tests.conftest import make_job


class TestMisbehavingPolicies:
    def test_policy_starting_same_job_twice(self):
        class DoubleStart(BaseScheduler):
            name = "double-start"

            def schedule(self, view):
                waiting = view.waiting()
                if waiting:
                    view.start(waiting[0])
                    view.start(waiting[0])  # corrupt: already started

        job = make_job(size=1, walltime=10.0)
        with pytest.raises(SimulationError, match="not waiting"):
            run_simulation(4, DoubleStart(), [job])

    def test_policy_starting_foreign_job(self):
        class ForeignStart(BaseScheduler):
            name = "foreign"

            def schedule(self, view):
                view.start(make_job(size=1, walltime=10.0))

        job = make_job(size=1, walltime=10.0)
        with pytest.raises(SimulationError, match="not waiting"):
            run_simulation(4, ForeignStart(), [job])

    def test_policy_reserving_then_squatting(self):
        """Start a job that would delay the reservation: rejected."""

        class Squatter(BaseScheduler):
            name = "squatter"

            def schedule(self, view):
                blocked = [j for j in view.waiting()
                           if j.size > view.free_nodes]
                if blocked and view.reservation is None:
                    view.reserve(blocked[0])
                # corrupt: ignore the backfill candidate filter entirely
                for job in view.waiting():
                    if job.size <= view.free_nodes:
                        view.start(job)

        blocker = make_job(size=3, walltime=100.0, submit=0.0)
        big = make_job(size=4, walltime=10.0, submit=1.0)
        sneaky = make_job(size=1, walltime=9999.0, submit=2.0)
        with pytest.raises(SimulationError, match="delay the reservation"):
            run_simulation(4, Squatter(), [blocker, big, sneaky])

    def test_policy_raising_propagates(self):
        class Exploder(BaseScheduler):
            name = "exploder"

            def schedule(self, view):
                raise RuntimeError("policy crashed")

        with pytest.raises(RuntimeError, match="policy crashed"):
            run_simulation(4, Exploder(), [make_job(size=1)])


class TestCorruptJobState:
    def test_started_job_injected_into_engine(self):
        job = make_job(size=1, walltime=10.0)
        job.state = JobState.WAITING
        job.mark_started(0.0, ExecMode.READY)
        with pytest.raises(ValueError, match="PENDING"):
            Engine(Cluster(4), FCFSEasy(), [job])

    def test_cluster_double_release(self):
        cluster = Cluster(4)
        job = make_job(size=2, walltime=10.0)
        cluster.allocate(job, 0.0)
        cluster.release(job)
        with pytest.raises(RuntimeError, match="not allocated"):
            cluster.release(job)

    def test_dependency_cycle_stalls_loudly(self):
        """Two jobs depending on each other can never run; the engine
        must finish with both held rather than hanging or crashing."""
        a = make_job(size=1, walltime=10.0, submit=0.0, deps=(2,), job_id=1)
        b = make_job(size=1, walltime=10.0, submit=0.0, deps=(1,), job_id=2)
        filler = make_job(size=1, walltime=5.0, submit=0.0, job_id=3)
        result = run_simulation(4, FCFSEasy(), [a, b, filler])
        assert a.state is JobState.HELD
        assert b.state is JobState.HELD
        assert filler.state is JobState.FINISHED
        assert len(result.finished_jobs) == 1


class TestRunawayGuards:
    def test_max_events_aborts_with_diagnostics(self):
        jobs = [make_job(size=1, walltime=10.0, submit=float(i))
                for i in range(20)]
        with pytest.raises(SimulationError, match="runaway simulation"):
            run_simulation(4, FCFSEasy(), jobs, max_events=5)

    def test_max_events_diagnostics_include_loop_state(self):
        jobs = [make_job(size=1, walltime=10.0, submit=float(i))
                for i in range(20)]
        with pytest.raises(SimulationError) as excinfo:
            run_simulation(4, FCFSEasy(), jobs, max_events=5)
        message = str(excinfo.value)
        assert "clock at t=" in message
        assert "jobs unfinished" in message

    def test_generous_max_events_does_not_trip(self):
        jobs = [make_job(size=1, walltime=10.0, submit=float(i))
                for i in range(5)]
        result = run_simulation(4, FCFSEasy(), jobs, max_events=1000)
        assert len(result.finished_jobs) == 5

    def test_wall_clock_deadline_aborts(self):
        class Sleeper(BaseScheduler):
            name = "sleeper"

            def schedule(self, view):
                import time

                time.sleep(0.05)
                for job in view.waiting():
                    if job.size <= view.free_nodes:
                        view.start(job)

        jobs = [make_job(size=1, walltime=10.0, submit=float(i))
                for i in range(50)]
        with pytest.raises(SimulationError, match="wall-clock"):
            run_simulation(4, Sleeper(), jobs, max_wall_s=0.01)

    def test_invalid_guard_values_rejected(self):
        with pytest.raises(ValueError, match="max_events"):
            Engine(Cluster(4), FCFSEasy(), [make_job(size=1)], max_events=0)
        with pytest.raises(ValueError, match="max_wall_s"):
            Engine(Cluster(4), FCFSEasy(), [make_job(size=1)], max_wall_s=-1.0)


class TestNumericRobustness:
    def test_agent_survives_pathological_feature_scales(self):
        """Seconds-scale vs hours-scale time units must not produce NaNs."""
        from repro.core.config import DRASConfig
        from repro.core.dras_pg import DRASPG

        cfg = DRASConfig(num_nodes=8, window=3, hidden1=8, hidden2=4,
                         time_scale=1.0, seed=0)  # degenerate normalization
        agent = DRASPG(cfg)
        jobs = [make_job(size=2, walltime=86400.0, submit=float(i * 10))
                for i in range(8)]
        run_simulation(8, agent, jobs)
        for p in agent.network.parameters():
            assert np.all(np.isfinite(p.value)), p.name

    def test_reward_with_zero_wait_queue_head(self):
        from repro.core.rewards import CapabilityReward

        cluster = Cluster(8)
        reward = CapabilityReward()
        # all waits zero: the t_max division must not blow up
        value = reward([make_job(submit=0.0)], [make_job(submit=0.0)],
                       cluster, now=0.0)
        assert np.isfinite(value)

    def test_masked_softmax_handles_huge_logits(self):
        from repro.nn.losses import masked_softmax

        probs = masked_softmax(np.array([1e308, -1e308]),
                               np.array([True, True]))
        assert np.isfinite(probs).all()
        assert probs.sum() == pytest.approx(1.0)
