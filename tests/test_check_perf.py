"""Tests for the RPR5xx profile-guided performance rules.

Each rule is exercised on a scratch package literally named ``repro``
(the hotness anchors hard-code the reproduction's qualnames) seeded
with one violation per rule, with a ``profile_baseline.json`` anchoring
``Engine.run``.  The gating contract — the whole family is silent when
no baseline is discoverable — protects every other scratch-tree test
in the suite, so it gets its own tests, as does ``# repro: noqa``
suppression and the clean state of the real tree.
"""

from __future__ import annotations

import json
import textwrap
from pathlib import Path

import pytest

from repro.check import analyze_project
from repro.check.hotness import BASELINE_ENV, PROFILE_BASELINE_SCHEMA
from repro.check.lint import Violation

REPO = Path(__file__).resolve().parent.parent
SRC = REPO / "src" / "repro"

BASELINE = {
    "schema": PROFILE_BASELINE_SCHEMA,
    "scopes": [{"name": "engine.run", "calls": 4000, "total_s": 1.0}],
}

#: one deliberate violation per RPR5xx rule, all reachable from the
#: ``engine.run`` anchor
HOT_TREE = {
    "repro/__init__.py": "",
    "repro/sim/__init__.py": "",
    "repro/sim/helpers.py": """
        class Helper:
            def __init__(self):
                self.mass = 1.0

        class Slotted:
            __slots__ = ("x",)

            def __init__(self):
                self.x = 1.0
    """,
    "repro/sim/engine.py": """
        from repro.sim.helpers import Helper, Slotted

        class Engine:
            def run(self, jobs):
                total = 0.0
                for job in jobs:
                    buf = [job]
                    helper = Helper()
                    slotted = Slotted()
                    total += self.cfg.weight + self.cfg.weight + self.cfg.weight
                    total += len(buf) + helper.mass + slotted.x
                total += self.accumulate(jobs)
                return total + len(self.snapshot())

            def snapshot(self):
                return dict(self.state)

            def accumulate(self, values):
                total = 0.0
                for v in set(values):
                    total += v
                return total


        def leaky(a):
            x = a + 1
            x = a + 2
            return x
    """,
}


def write_tree(root: Path, files: dict[str, str]) -> Path:
    for rel, body in files.items():
        path = root / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(body), encoding="utf-8")
    return root


def rpr5(violations: list[Violation]) -> list[Violation]:
    return [v for v in violations if v.rule_id.startswith("RPR5")]


@pytest.fixture()
def hot_tree(tmp_path, monkeypatch):
    """The seeded tree with a discoverable anchor baseline."""
    monkeypatch.delenv(BASELINE_ENV, raising=False)
    root = write_tree(tmp_path, dict(HOT_TREE))
    (tmp_path / "profile_baseline.json").write_text(json.dumps(BASELINE))
    return root / "repro"


class TestRulesFire:
    def test_every_rule_fires_once_on_the_seeded_tree(self, hot_tree):
        findings = rpr5(analyze_project(hot_tree))
        assert {v.rule_id for v in findings} == {
            "RPR501", "RPR502", "RPR503", "RPR504", "RPR505", "RPR506"}

    def test_hot_loop_alloc_names_the_allocation(self, hot_tree):
        findings = [v for v in rpr5(analyze_project(hot_tree))
                    if v.rule_id == "RPR501"]
        assert len(findings) == 1
        assert "list display at loop depth 1" in findings[0].message
        assert "Engine.run" in findings[0].message

    def test_attr_hoist_counts_the_chain(self, hot_tree):
        findings = [v for v in rpr5(analyze_project(hot_tree))
                    if v.rule_id == "RPR502"]
        assert len(findings) == 1
        assert "'self.cfg.weight' read 3x" in findings[0].message

    def test_rebuild_flags_the_hot_copy(self, hot_tree):
        findings = [v for v in rpr5(analyze_project(hot_tree))
                    if v.rule_id == "RPR503"]
        assert len(findings) == 1
        assert "dict(self.state)" in findings[0].message
        # snapshot() is hot via the self-call edge from run
        assert "Engine.snapshot" in findings[0].message

    def test_no_slots_flags_helper_but_not_slotted(self, hot_tree):
        findings = [v for v in rpr5(analyze_project(hot_tree))
                    if v.rule_id == "RPR504"]
        assert len(findings) == 1
        assert "repro.sim.helpers.Helper" in findings[0].message
        assert "Slotted" not in findings[0].message

    def test_dead_store_reported_even_in_cold_function(self, hot_tree):
        findings = [v for v in rpr5(analyze_project(hot_tree))
                    if v.rule_id == "RPR505"]
        assert len(findings) == 1
        assert "'x' in repro.sim.engine.leaky" in findings[0].message

    def test_float_accum_over_set_iteration(self, hot_tree):
        findings = [v for v in rpr5(analyze_project(hot_tree))
                    if v.rule_id == "RPR506"]
        assert len(findings) == 1
        assert "unordered set iteration" in findings[0].message
        assert "Engine.accumulate" in findings[0].message


class TestGating:
    def test_silent_without_any_baseline(self, tmp_path, monkeypatch):
        monkeypatch.delenv(BASELINE_ENV, raising=False)
        root = write_tree(tmp_path, dict(HOT_TREE))
        # no profile_baseline.json anywhere under tmp_path
        assert rpr5(analyze_project(root / "repro")) == []

    def test_env_off_silences_despite_local_baseline(self, hot_tree,
                                                     monkeypatch):
        monkeypatch.setenv(BASELINE_ENV, "off")
        assert rpr5(analyze_project(hot_tree)) == []

    def test_env_override_enables_remote_baseline(self, tmp_path, monkeypatch):
        root = write_tree(tmp_path / "tree", dict(HOT_TREE))
        baseline = tmp_path / "elsewhere" / "anchor.json"
        baseline.parent.mkdir()
        baseline.write_text(json.dumps(BASELINE))
        monkeypatch.setenv(BASELINE_ENV, str(baseline))
        findings = rpr5(analyze_project(root / "repro"))
        assert {v.rule_id for v in findings} == {
            "RPR501", "RPR502", "RPR503", "RPR504", "RPR505", "RPR506"}


class TestSuppression:
    def test_line_noqa_suppresses_one_finding(self, hot_tree):
        engine = hot_tree / "sim" / "engine.py"
        source = engine.read_text()
        assert source.count("buf = [job]") == 1
        engine.write_text(source.replace(
            "buf = [job]", "buf = [job]  # repro: noqa[hot-loop-alloc]"))
        findings = rpr5(analyze_project(hot_tree))
        assert "RPR501" not in {v.rule_id for v in findings}
        # the other five rules are unaffected
        assert {v.rule_id for v in findings} == {
            "RPR502", "RPR503", "RPR504", "RPR505", "RPR506"}


class TestRealTree:
    def test_committed_tree_is_rpr5_clean(self, monkeypatch):
        """The ratchet baseline stays empty: the hot path is optimized.

        This runs with the committed ``profile_baseline.json``
        discovered from the src layout, exactly as ``repro check
        --strict`` does in CI.
        """
        monkeypatch.delenv(BASELINE_ENV, raising=False)
        findings = rpr5(analyze_project(SRC, package="repro"))
        assert findings == []


class TestStaleBaselineRule:
    """RPR507: the baseline provenance stamp vs. the checker's anchors."""

    def _doc(self, anchor_scopes=None, extra_scopes=()):
        doc = {k: v for k, v in BASELINE.items()}
        doc["scopes"] = list(BASELINE["scopes"]) + [
            {"name": name, "calls": 4000, "total_s": 1.0}
            for name in extra_scopes]
        if anchor_scopes is not None:
            doc["anchor_scopes"] = list(anchor_scopes)
        return doc

    def _findings(self, tmp_path, monkeypatch, doc):
        monkeypatch.delenv(BASELINE_ENV, raising=False)
        root = write_tree(tmp_path, dict(HOT_TREE))
        (tmp_path / "profile_baseline.json").write_text(json.dumps(doc))
        return [v for v in rpr5(analyze_project(root / "repro"))
                if v.rule_id == "RPR507"]

    def test_drifted_scope_set_fires_at_the_baseline(self, tmp_path,
                                                     monkeypatch):
        findings = self._findings(
            tmp_path, monkeypatch,
            self._doc(anchor_scopes=["engine.run", "engine.olden"]))
        assert len(findings) == 1
        assert findings[0].path.endswith("profile_baseline.json")
        assert findings[0].line == 1
        assert "obsolete scopes engine.olden" in findings[0].message
        assert "repro bench --emit-profile" in findings[0].message

    def test_measured_scope_resolving_to_nothing_fires(self, tmp_path,
                                                       monkeypatch):
        from repro.check.hotness import SCOPE_ANCHORS

        findings = self._findings(
            tmp_path, monkeypatch,
            self._doc(anchor_scopes=sorted(SCOPE_ANCHORS),
                      extra_scopes=["nn.forward"]))
        assert len(findings) == 1
        assert "'nn.forward'" in findings[0].message
        assert "resolves to no function" in findings[0].message

    def test_pre_stamp_baseline_stays_silent(self, tmp_path, monkeypatch):
        # baselines written before the provenance stamp existed cannot
        # be verified; RPR507 must not guess
        assert self._findings(tmp_path, monkeypatch, self._doc()) == []

    def test_fresh_stamp_stays_silent(self, tmp_path, monkeypatch):
        from repro.check.hotness import SCOPE_ANCHORS

        findings = self._findings(
            tmp_path, monkeypatch,
            self._doc(anchor_scopes=sorted(SCOPE_ANCHORS)))
        assert findings == []
