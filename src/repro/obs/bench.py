"""Perf-benchmark harness behind ``python -m repro bench``.

Times the hot paths every future optimization PR will fight over —
the engine event loop (fault-free and under fault injection),
EASY-backfill candidate filtering, conservative free-capacity profile
queries, batched NN window scoring and the vectorized NN train step —
on fixed seeded workloads, and writes machine-readable baselines:

* ``BENCH_sim.json`` — simulator benchmarks (``events_per_s``);
* ``BENCH_nn.json`` — network benchmarks (``steps_per_s``).

Each per-benchmark entry records
``{name, reps, wall_s, events_per_s | steps_per_s, seed, git_sha}``
plus an ``extra`` block of workload parameters, and each file embeds a
:class:`~repro.obs.manifest.RunManifest`.  Committed baselines at the
repo root give every later PR a regression trajectory — compare with
``scripts/check_bench_regression.py`` or ``pytest -m bench``
(see ``docs/benchmarks.md``).

Wall timings use ``time.perf_counter()``; throughput numbers are
machine-dependent, which is why comparisons apply a relative tolerance.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable

import numpy as np

from repro.obs.manifest import RunManifest, git_sha

#: schema tag stamped into every BENCH_*.json document
BENCH_SCHEMA = "repro.bench/v1"


@dataclass(frozen=True)
class BenchResult:
    """Outcome of one benchmark: identity, effort and throughput."""

    name: str
    reps: int
    wall_s: float
    rate_key: str      #: ``"events_per_s"`` or ``"steps_per_s"``
    rate: float
    extra: dict[str, Any] = field(default_factory=dict)

    def as_dict(self, seed: int, sha: str) -> dict[str, Any]:
        """The per-benchmark JSON entry (acceptance schema)."""
        return {
            "name": self.name,
            "reps": self.reps,
            "wall_s": self.wall_s,
            self.rate_key: self.rate,
            "seed": seed,
            "git_sha": sha,
            "extra": dict(self.extra),
        }


# -- simulator benchmarks ------------------------------------------------------

def _suite_rng(seed: int, rng: np.random.Generator | None) -> np.random.Generator:
    """The injected generator, or one derived from the explicit seed.

    Every workload draw in this module flows through a generator that
    enters here — either threaded down from :func:`run_suite` (one
    generator for the whole suite) or derived once at a public bench
    entry point.  No helper re-derives its own stream (RPR601 idiom).
    """
    return rng if rng is not None else np.random.default_rng(seed)


def _theta_jobs(num_nodes: int, n_jobs: int, rng: np.random.Generator) -> list:
    """Theta-like jobset drawn from ``rng``, reused (via copies) across reps."""
    from repro.workload.models import ThetaModel

    model = ThetaModel.scaled(num_nodes)
    return model.generate(n_jobs, rng)


def bench_engine_throughput(
    seed: int = 0,
    quick: bool = False,
    trace_to_null: bool = False,
    rng: np.random.Generator | None = None,
) -> BenchResult:
    """Engine event-loop throughput under FCFS/EASY on a Theta-like trace.

    Counts two events per job (SUBMIT + FINISH); the rate is events
    drained per wall-clock second, including queue management, the
    policy call and metric upkeep.  With ``trace_to_null`` a tracer
    writing to ``os.devnull`` is attached, measuring the enabled-path
    tracing cost (the default measures the disabled path).
    """
    from repro.schedulers.fcfs import FCFSEasy
    from repro.sim.engine import run_simulation

    num_nodes = 64
    n_jobs = 300 if quick else 2000
    reps = 1 if quick else 3
    jobs = _theta_jobs(num_nodes, n_jobs, _suite_rng(seed, rng))

    tracer = None
    if trace_to_null:
        from repro.obs.trace import Tracer

        tracer = Tracer(open(os.devnull, "w", encoding="utf-8"))

    wall = 0.0
    events = 0
    try:
        for _ in range(reps):
            fresh = [j.copy_fresh() for j in jobs]
            t0 = time.perf_counter()
            result = run_simulation(num_nodes, FCFSEasy(), fresh, trace=tracer)
            wall += time.perf_counter() - t0
            events += 2 * len(result.jobs)
    finally:
        if tracer is not None:
            tracer.close()

    name = "engine-throughput-traced" if trace_to_null else "engine-throughput"
    return BenchResult(
        name=name,
        reps=reps,
        wall_s=wall,
        rate_key="events_per_s",
        rate=events / wall if wall > 0 else 0.0,
        extra={"num_nodes": num_nodes, "n_jobs": n_jobs, "policy": "fcfs"},
    )


def bench_engine_live(
    seed: int = 0,
    quick: bool = False,
    rng: np.random.Generator | None = None,
) -> BenchResult:
    """Engine throughput with the live-telemetry bus enabled.

    Same workload as :func:`bench_engine_throughput` but watched by a
    :class:`~repro.obs.live.LiveBus` carrying a progress sink and a
    snapshot-shard writer, both pointed at the null device — the
    enabled-path cost of the live view (snapshot building, stamping,
    fan-out, line rendering, JSONL serialization) without terminal or
    disk variance.  The cadence is densified (one snapshot per 100
    events instead of the default 2000) and the progress rate-limit
    disabled so every publish renders; the measured overhead is an
    upper bound on what ``--live`` costs at default settings.
    """
    from repro.obs.live import LiveBus, ProgressSink, SnapshotWriter
    from repro.schedulers.fcfs import FCFSEasy
    from repro.sim.engine import run_simulation

    num_nodes = 64
    n_jobs = 300 if quick else 2000
    reps = 1 if quick else 3
    live_every = 100
    jobs = _theta_jobs(num_nodes, n_jobs, _suite_rng(seed, rng))

    null_stream = open(os.devnull, "w", encoding="utf-8")
    wall = 0.0
    events = 0
    try:
        for _ in range(reps):
            bus = LiveBus()
            bus.attach(ProgressSink(null_stream, min_interval_s=0.0))
            bus.attach(SnapshotWriter(os.devnull, source="bench"))
            fresh = [j.copy_fresh() for j in jobs]
            t0 = time.perf_counter()
            result = run_simulation(num_nodes, FCFSEasy(), fresh,
                                    live=bus, live_every=live_every)
            wall += time.perf_counter() - t0
            bus.close()
            events += 2 * len(result.jobs)
    finally:
        null_stream.close()
    return BenchResult(
        name="engine-throughput-live",
        reps=reps,
        wall_s=wall,
        rate_key="events_per_s",
        rate=events / wall if wall > 0 else 0.0,
        extra={"num_nodes": num_nodes, "n_jobs": n_jobs, "policy": "fcfs",
               "live_every": live_every},
    )


def bench_engine_faulted(
    seed: int = 0,
    quick: bool = False,
    rng: np.random.Generator | None = None,
) -> BenchResult:
    """Engine throughput with fault injection enabled.

    Same workload shape as :func:`bench_engine_throughput` but with a
    :class:`~repro.sim.faults.FaultConfig` producing dozens of node
    failures and job kills per run, exercising the fail/repair/kill
    handlers, requeue bookkeeping and the per-node availability mask.
    The fault rate is deliberately moderate: aggressive MTBFs stretch
    the drain phase (killed work is redone on a degraded machine),
    which would measure workload inflation rather than handler cost.
    Events counted include the fault events (failures, repairs, kills)
    on top of SUBMIT/FINISH, so the rate is comparable but not
    identical to the fault-free benchmark.
    """
    from repro.schedulers.fcfs import FCFSEasy
    from repro.sim.engine import run_simulation
    from repro.sim.faults import FaultConfig

    num_nodes = 64
    n_jobs = 300 if quick else 1000
    reps = 1 if quick else 3
    jobs = _theta_jobs(num_nodes, n_jobs, _suite_rng(seed, rng))
    faults = FaultConfig(mtbf=10_000.0, mttr=1500.0, blade_size=4,
                         blade_prob=0.2, job_kill_mtbf=50_000.0,
                         seed=seed, requeue="requeue-front")

    wall = 0.0
    events = 0
    for _ in range(reps):
        fresh = [j.copy_fresh() for j in jobs]
        t0 = time.perf_counter()
        result = run_simulation(num_nodes, FCFSEasy(), fresh, faults=faults)
        wall += time.perf_counter() - t0
        res = result.resilience
        events += 2 * len(result.jobs) + 2 * res.node_failures + res.jobs_killed
    return BenchResult(
        name="engine-throughput-faulted",
        reps=reps,
        wall_s=wall,
        rate_key="events_per_s",
        rate=events / wall if wall > 0 else 0.0,
        extra={"num_nodes": num_nodes, "n_jobs": n_jobs, "policy": "fcfs",
               "mtbf": faults.mtbf, "mttr": faults.mttr},
    )


def _loaded_cluster(num_nodes: int, rng: np.random.Generator):
    """A cluster with staggered running jobs and a blocked head job."""
    from repro.sim.cluster import Cluster
    from repro.sim.job import Job

    cluster = Cluster(num_nodes)
    running = []
    used = 0
    job_id = 1_000_000  # out of the way of auto ids
    while used + 8 <= num_nodes - 4:
        job = Job(size=8, walltime=float(rng.integers(600, 7200)),
                  runtime=600.0, submit_time=0.0, job_id=job_id)
        cluster.allocate(job, 0.0)
        running.append(job)
        used += 8
        job_id += 1
    blocked = Job(size=num_nodes // 2, walltime=3600.0, runtime=3600.0,
                  submit_time=0.0, job_id=job_id)
    return cluster, running, blocked


def bench_backfill(
    seed: int = 0,
    quick: bool = False,
    rng: np.random.Generator | None = None,
) -> BenchResult:
    """EASY reservation + candidate filtering over a 50-job pool.

    One "event" is one ``reserve`` + ``candidates`` round against a
    loaded 64-node cluster, the per-instance work a backfilling policy
    adds on top of the raw event loop.
    """
    from repro.sim.backfill import BackfillPlanner
    from repro.sim.job import Job

    rng = _suite_rng(seed, rng)
    cluster, _, blocked = _loaded_cluster(64, rng)
    planner = BackfillPlanner(cluster)
    pool = [
        Job(size=int(rng.integers(1, 9)), walltime=float(rng.integers(300, 14400)),
            runtime=300.0, submit_time=0.0, job_id=2_000_000 + i)
        for i in range(50)
    ]
    reps = 500 if quick else 20_000
    t0 = time.perf_counter()
    n_candidates = 0
    for _ in range(reps):
        reservation = planner.reserve(blocked, 0.0)
        n_candidates += len(planner.candidates(pool, reservation, 0.0))
    wall = time.perf_counter() - t0
    return BenchResult(
        name="backfill-plan",
        reps=reps,
        wall_s=wall,
        rate_key="events_per_s",
        rate=reps / wall if wall > 0 else 0.0,
        extra={"num_nodes": 64, "pool_size": len(pool),
               "mean_candidates": n_candidates / reps},
    )


def bench_conservative_profile(
    seed: int = 0,
    quick: bool = False,
    rng: np.random.Generator | None = None,
) -> BenchResult:
    """Conservative-backfilling profile build + query + reserve cycle.

    One "event" is one ``earliest_start`` + ``reserve`` pair on a
    :class:`~repro.sim.profile.ResourceProfile` rebuilt from a loaded
    cluster — the inner loop of ``ConservativeBackfill``.
    """
    from repro.sim.profile import ResourceProfile

    rng = _suite_rng(seed, rng)
    cluster, _, _ = _loaded_cluster(64, rng)
    requests = [
        (int(rng.integers(1, 17)), float(rng.integers(300, 7200)))
        for _ in range(16)
    ]
    reps = 100 if quick else 2_000
    queries = 0
    t0 = time.perf_counter()
    for _ in range(reps):
        profile = ResourceProfile.from_cluster(cluster, 0.0)
        for size, duration in requests:
            start = profile.earliest_start(size, duration)
            profile.reserve(start, size, duration)
            queries += 1
    wall = time.perf_counter() - t0
    return BenchResult(
        name="conservative-profile",
        reps=reps,
        wall_s=wall,
        rate_key="events_per_s",
        rate=queries / wall if wall > 0 else 0.0,
        extra={"num_nodes": 64, "requests_per_rep": len(requests)},
    )


# -- NN benchmarks -------------------------------------------------------------

#: minibatch of the per-decision NN benchmarks (the DRAS window shape)
NN_BATCH = 8

#: minibatch of the ``*-batched`` NN benchmarks (episode-level batching)
NN_BATCH_LARGE = 64


def _bench_network(rng: np.random.Generator, batch: int = NN_BATCH):
    """A mid-size DRAS network + batched input for the NN benchmarks."""
    from repro.nn.network import build_dras_network

    rows, hidden1, hidden2, outputs = 280, 512, 128, 20
    net = build_dras_network(rows, hidden1, hidden2, outputs, rng=rng)
    x = rng.normal(size=(batch, rows, 2))
    return net, x, {"rows": rows, "hidden1": hidden1, "hidden2": hidden2,
                    "outputs": outputs, "batch": batch}


def bench_nn_forward(
    seed: int = 0,
    quick: bool = False,
    rng: np.random.Generator | None = None,
) -> BenchResult:
    """Forward passes per second through the five-layer DRAS network.

    One "step" is one whole-batch forward (batch 8) — the per-decision
    window scoring a DRAS agent performs.  Comparable across the
    batched refactor: the rate counts forward *calls*, not samples.
    """
    net, x, shape = _bench_network(_suite_rng(seed, rng))
    reps = 30 if quick else 300
    t0 = time.perf_counter()
    for _ in range(reps):
        net.forward(x)
    wall = time.perf_counter() - t0
    return BenchResult(
        name="nn-forward",
        reps=reps,
        wall_s=wall,
        rate_key="steps_per_s",
        rate=reps / wall if wall > 0 else 0.0,
        extra=shape,
    )


def bench_nn_forward_batched(
    seed: int = 0,
    quick: bool = False,
    rng: np.random.Generator | None = None,
) -> BenchResult:
    """Windows scored per second through one large batched forward.

    The serving-path benchmark: ``score_window`` stacks many concurrent
    windows into a ``[64, rows, 2]`` matrix and scores them with one
    matmul per layer.  The rate counts *windows* (samples) per second —
    ``reps * batch / wall`` — so it is directly comparable to
    ``nn-forward`` times its batch.
    """
    net, x, shape = _bench_network(_suite_rng(seed, rng), batch=NN_BATCH_LARGE)
    reps = 15 if quick else 150
    t0 = time.perf_counter()
    for _ in range(reps):
        net.forward(x)
    wall = time.perf_counter() - t0
    return BenchResult(
        name="nn-forward-batched",
        reps=reps,
        wall_s=wall,
        rate_key="steps_per_s",
        rate=reps * x.shape[0] / wall if wall > 0 else 0.0,
        extra={**shape, "rate_unit": "windows"},
    )


def _train_step_result(name: str, batch: int, reps: int,
                       rng: np.random.Generator) -> BenchResult:
    """Time the vectorized train step; the rate is in sample-steps/s.

    One rep is what the training core does per parameter update: one
    batched forward over ``[batch, rows, 2]``, one backward with
    gradients summed across the batch, and one Adam step.  A
    *sample-step* is one transition trained — ``reps * batch`` of them
    happen per run — matching how the DRAS trainers consume the core
    (one Adam step amortized over a stacked minibatch, never one step
    per sample).
    """
    from repro.nn.optim import Adam

    net, x, shape = _bench_network(rng, batch=batch)
    optimizer = Adam(net.parameters(), lr=1e-3)
    t0 = time.perf_counter()
    for _ in range(reps):
        out = net.forward(x)
        grad = np.ones_like(out) / out.size
        net.zero_grad()
        net.backward(grad)
        optimizer.step()
    wall = time.perf_counter() - t0
    return BenchResult(
        name=name,
        reps=reps,
        wall_s=wall,
        rate_key="steps_per_s",
        rate=reps * batch / wall if wall > 0 else 0.0,
        extra={**shape, "rate_unit": "sample-steps",
               "updates_per_s": reps / wall if wall > 0 else 0.0},
    )


def bench_nn_train_step(
    seed: int = 0,
    quick: bool = False,
    rng: np.random.Generator | None = None,
) -> BenchResult:
    """Sample-steps per second through the vectorized training core.

    Forward + backward + Adam on the per-decision minibatch (batch 8).
    The rate counts *transitions trained per second* (``reps * batch /
    wall``); ``extra.updates_per_s`` keeps the raw optimizer-step rate
    for anyone comparing against pre-batched baselines, whose
    ``steps_per_s`` counted one step per update.
    """
    return _train_step_result("nn-train-step", batch=NN_BATCH,
                              reps=20 if quick else 200,
                              rng=_suite_rng(seed, rng))


def bench_nn_train_step_batched(
    seed: int = 0,
    quick: bool = False,
    rng: np.random.Generator | None = None,
) -> BenchResult:
    """Sample-steps per second at episode-level batching (batch 64).

    The same vectorized train step as ``nn-train-step`` but amortizing
    each Adam step over a ``[64, rows, 2]`` stacked-transition
    minibatch — the shape of episode-level PG/DQL updates.  The gap
    between this rate and ``nn-train-step`` is the pure amortization
    win of batching updates.
    """
    return _train_step_result("nn-train-step-batched", batch=NN_BATCH_LARGE,
                              reps=10 if quick else 100,
                              rng=_suite_rng(seed, rng))


# -- suites and file output ----------------------------------------------------

SIM_BENCHES: tuple[Callable[..., BenchResult], ...] = (
    bench_engine_throughput,
    lambda seed=0, quick=False, rng=None: bench_engine_throughput(
        seed=seed, quick=quick, trace_to_null=True, rng=rng
    ),
    bench_engine_live,
    bench_engine_faulted,
    bench_backfill,
    bench_conservative_profile,
)

NN_BENCHES: tuple[Callable[..., BenchResult], ...] = (
    bench_nn_forward,
    bench_nn_forward_batched,
    bench_nn_train_step,
    bench_nn_train_step_batched,
)


def run_suite(
    kind: str,
    seed: int = 0,
    quick: bool = False,
    progress: Callable[[str], None] | None = None,
) -> dict[str, Any]:
    """Run the ``"sim"`` or ``"nn"`` suite; returns the JSON document."""
    benches = {"sim": SIM_BENCHES, "nn": NN_BENCHES}.get(kind)
    if benches is None:
        raise ValueError(f"unknown bench suite {kind!r}; use 'sim' or 'nn'")
    sha = git_sha()
    entries = []
    # one seeded generator threaded through the whole suite: workload
    # draws continue a single stream instead of five per-function
    # default_rng(seed) re-derivations (the RPR601 injection idiom)
    rng = np.random.default_rng(seed)
    for bench in benches:
        result = bench(seed=seed, quick=quick, rng=rng)
        entries.append(result.as_dict(seed, sha))
        if progress is not None:
            progress(
                f"{result.name}: {result.rate:,.0f} {result.rate_key} "
                f"({result.reps} reps, {result.wall_s:.2f} s)"
            )
    manifest = RunManifest.create(
        kind="bench",
        seed=seed,
        config={"suite": kind, "quick": quick},
        summary={e["name"]: e.get("events_per_s") or e.get("steps_per_s")
                 for e in entries},
        sha=sha,
    )
    return {
        "schema": BENCH_SCHEMA,
        "kind": kind,
        "quick": quick,
        "benchmarks": entries,
        "manifest": manifest.as_dict(),
    }


def write_bench_files(
    out_dir: str | Path = ".",
    seed: int = 0,
    quick: bool = False,
    only: str | None = None,
    progress: Callable[[str], None] | None = None,
) -> list[Path]:
    """Run the selected suites and write ``BENCH_<kind>.json`` files.

    ``only`` restricts to one suite (``"sim"`` or ``"nn"``); the default
    runs both.  Returns the written paths.
    """
    out_dir = Path(out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    kinds = (only,) if only else ("sim", "nn")
    paths = []
    for kind in kinds:
        doc = run_suite(kind, seed=seed, quick=quick, progress=progress)
        path = out_dir / f"BENCH_{kind}.json"
        path.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n",
                        encoding="utf-8")
        paths.append(path)
    return paths


# -- profiler baseline ---------------------------------------------------------

def profile_workload(seed: int = 0, quick: bool = False):
    """Run the bench workloads under one profiler and return it.

    Covers both anchor families of :mod:`repro.check.hotness`: the
    engine scopes (``engine.run``/``engine.instance``/
    ``engine.schedule``) via an explicit per-engine profiler, and the
    NN scopes (``nn.forward``/``nn.backward``/``nn.adam_step``), which
    only record through the process-global profiler hook.  Scope names
    and call counts are deterministic for a given seed and workload;
    only the wall timings vary by machine.
    """
    from repro.nn.optim import Adam
    from repro.obs.profile import Profiler, set_global_profiler
    from repro.schedulers.fcfs import FCFSEasy
    from repro.sim.engine import run_simulation

    prof = Profiler()
    num_nodes = 64
    n_jobs = 300 if quick else 2000
    # single seeded generator for the whole workload; _theta_jobs
    # consumes first, so the engine jobset (and with it every anchor
    # call count) is bit-identical to pre-threading baselines
    rng = np.random.default_rng(seed)
    jobs = _theta_jobs(num_nodes, n_jobs, rng)
    run_simulation(num_nodes, FCFSEasy(),
                   [j.copy_fresh() for j in jobs], profile=prof)

    net, x, _ = _bench_network(rng)
    optimizer = Adam(net.parameters(), lr=1e-3)
    steps = 4 if quick else 30
    previous = set_global_profiler(prof)
    try:
        for _ in range(steps):
            out = net.forward(x)
            grad = np.ones_like(out) / out.size
            net.zero_grad()
            net.backward(grad)
            optimizer.step()
    finally:
        set_global_profiler(previous)
    return prof


def write_profile_baseline(
    path: str | Path = "profile_baseline.json",
    seed: int = 0,
    quick: bool = False,
) -> Path:
    """Write the deterministic profiler baseline for the hotness ranker.

    The document (schema ``repro.profile-baseline/v1``) records every
    profiler scope's call count plus informational wall timings.  The
    RPR5xx hotness model keys off the *call counts only*, so a baseline
    regenerated on any machine ranks functions identically.  Keep it in
    sync with ``BENCH_sim.json`` via ``scripts/refresh_perf_baselines.py``.
    """
    from repro.check.hotness import PROFILE_BASELINE_SCHEMA, SCOPE_ANCHORS

    prof = profile_workload(seed=seed, quick=quick)
    scopes = [
        {"name": entry.name, "calls": entry.calls,
         "cum_s": entry.cum_s, "self_s": entry.self_s}
        for entry in sorted(prof.flat(), key=lambda e: e.name)
    ]
    doc = {
        "schema": PROFILE_BASELINE_SCHEMA,
        "seed": seed,
        "quick": quick,
        # provenance stamp: the anchor-scope set this baseline was
        # generated for; RPR507 flags the baseline as stale when the
        # checker's SCOPE_ANCHORS move away from it
        "anchor_scopes": sorted(SCOPE_ANCHORS),
        "git_sha": git_sha(),
        "workload": {"num_nodes": 64, "n_jobs": 300 if quick else 2000,
                     "policy": "fcfs", "nn_steps": 4 if quick else 30},
        "note": ("hotness ranking uses the deterministic 'calls' counts; "
                 "wall seconds are informational and machine-dependent"),
        "scopes": scopes,
    }
    path = Path(path)
    path.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n",
                    encoding="utf-8")
    return path


def validate_bench_doc(doc: dict[str, Any]) -> list[str]:
    """Schema-check one BENCH document; returns a list of problems.

    An empty list means the document is valid.  Used by the smoke test
    and by ``scripts/check_bench_regression.py`` before comparing.
    """
    problems = []
    if doc.get("schema") != BENCH_SCHEMA:
        problems.append(f"schema is {doc.get('schema')!r}, expected {BENCH_SCHEMA!r}")
    if doc.get("kind") not in ("sim", "nn"):
        problems.append(f"kind is {doc.get('kind')!r}, expected 'sim' or 'nn'")
    benchmarks = doc.get("benchmarks")
    if not isinstance(benchmarks, list) or not benchmarks:
        problems.append("benchmarks must be a non-empty list")
        benchmarks = []
    for i, entry in enumerate(benchmarks):
        where = f"benchmarks[{i}]"
        for key in ("name", "reps", "wall_s", "seed", "git_sha"):
            if key not in entry:
                problems.append(f"{where}: missing {key!r}")
        rates = [k for k in ("events_per_s", "steps_per_s") if k in entry]
        if len(rates) != 1:
            problems.append(
                f"{where}: needs exactly one of events_per_s/steps_per_s, "
                f"has {rates}"
            )
        elif not entry[rates[0]] > 0:
            problems.append(f"{where}: {rates[0]} must be positive")
        if "reps" in entry and not entry["reps"] > 0:
            problems.append(f"{where}: reps must be positive")
        if "wall_s" in entry and not entry["wall_s"] > 0:
            problems.append(f"{where}: wall_s must be positive")
    if not isinstance(doc.get("manifest"), dict):
        problems.append("manifest block missing")
    return problems
