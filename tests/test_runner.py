"""Tests for the run-everything orchestrator."""

import pytest

from repro.experiments.runner import SPECS, combined_report, run_all


class TestRunAll:
    def test_selected_subset(self):
        reports = run_all(scale="tiny", only=("table1", "table3"))
        assert set(reports) == {"table1", "table3"}
        assert "Table I" in reports["table1"]
        assert "21,890,053" in reports["table3"]

    def test_unknown_id_rejected(self):
        with pytest.raises(ValueError, match="unknown experiment"):
            run_all(scale="tiny", only=("fig99",))

    def test_progress_callback(self):
        messages = []
        run_all(scale="tiny", only=("table1",), progress=messages.append)
        assert len(messages) == 1
        assert messages[0].startswith("table1")

    def test_spec_ids_unique_and_complete(self):
        ids = [s.exp_id for s in SPECS]
        assert len(ids) == len(set(ids))
        assert set(ids) == {
            "table1", "table2", "table3", "table4",
            "fig2", "fig3", "fig4", "fig5", "fig6", "fig7", "fig8", "fig9",
            "faultsweep", "overhead",
        }

    def test_workload_experiments_at_tiny(self):
        reports = run_all(scale="tiny", only=("table2", "fig2", "fig3"))
        assert "Table II" in reports["table2"]
        assert "Fig 2" in reports["fig2"]
        assert "Fig 3" in reports["fig3"]


class TestCombinedReport:
    def test_contains_all_sections(self):
        reports = {"a": "alpha body", "b": "beta body"}
        text = combined_report(reports, "tiny")
        assert "[a]" in text and "[b]" in text
        assert "alpha body" in text and "beta body" in text
        assert "scale: tiny" in text

    def test_missing_expected_cell_renders_quarantined(self):
        text = combined_report({"a": "alpha body"}, "tiny",
                               expected=["a", "b"])
        assert "[a]" in text and "alpha body" in text
        assert "[b] QUARANTINED — no result recorded" in text
        assert "1 of 2 experiment(s) quarantined" in text
        assert "partial" in text

    def test_failure_reason_is_rendered(self):
        text = combined_report(
            {"a": "alpha body"}, "tiny", expected=["a", "b"],
            failures={"b": "CellTimeout"})
        assert "[b] QUARANTINED — CellTimeout" in text
        assert "--resume" in text

    def test_failure_outside_expected_still_listed(self):
        text = combined_report({}, "tiny", failures={"c": "ValueError"})
        assert "[c] QUARANTINED — ValueError" in text

    def test_complete_report_has_no_partial_trailer(self):
        text = combined_report({"a": "x", "b": "y"}, "tiny",
                               expected=["a", "b"])
        assert "QUARANTINED" not in text
        assert "partial" not in text


class TestCLIAll:
    def test_reproduce_all_subset_via_runner(self, capsys):
        # the 'all' CLI path is exercised cheaply through the runner API;
        # the full sweep is covered by the benchmark suite
        from repro.cli import main

        rc = main(["reproduce", "table1"])
        assert rc == 0
        capsys.readouterr()
