"""Scheduling metrics (paper section IV-E).

Four well-established metrics are measured:

* **job wait time** — submission to start (average, maximum and the full
  distribution);
* **job response time** — submission to completion;
* **job slowdown** — response time over actual runtime;
* **system utilization** — used node-hours of useful work over total
  elapsed node-hours.

:class:`RunMetrics` summarizes a finished :class:`SimulationResult`.
:class:`MetricsRecorder` is an engine observer that additionally tracks
the time-weighted node occupancy, giving an exact utilization integral
independent of job bookkeeping.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass

import numpy as np

from repro.check import sanitize as _san
from repro.sim.engine import SchedulingView, SimulationResult
from repro.sim.job import ExecMode, Job, JobState

SECONDS_PER_WEEK = 7 * 24 * 3600.0


def _mean(values: list[float]) -> float:
    return float(np.mean(values)) if values else 0.0


@dataclass(frozen=True)
class RunMetrics:
    """Summary metrics of one simulation run."""

    num_jobs: int
    avg_wait: float
    max_wait: float
    p99_wait: float
    avg_response: float
    avg_slowdown: float
    utilization: float
    makespan: float
    total_core_hours: float

    @classmethod
    def from_result(
        cls, result: SimulationResult, slowdown_bound: float = 0.0
    ) -> "RunMetrics":
        """Compute all scalar metrics from a finished simulation run."""
        jobs = result.finished_jobs
        if _san.sanitizer_enabled():
            for job in jobs:
                _san.check_job_metrics(job)
        waits = [j.wait_time for j in jobs]
        responses = [j.response_time for j in jobs]
        slowdowns = [j.slowdown(bound=slowdown_bound) for j in jobs]
        used = sum(j.node_seconds for j in jobs)
        elapsed = result.elapsed
        # Utilization is measured over the *arrival span* (first to last
        # submission): after the last arrival the system necessarily
        # drains, and on short traces with long jobs that tail would
        # dominate the denominator.  Work done past the cutoff is
        # excluded from the numerator for consistency.
        cutoff = max((j.submit_time for j in jobs), default=0.0)
        span = cutoff - result.first_submit
        if span > 0:
            used_in_span = sum(
                j.size * max(0.0, min(j.end_time, cutoff) - j.start_time)
                for j in jobs
                if j.start_time is not None and j.start_time < cutoff
            )
            utilization = used_in_span / (result.num_nodes * span)
        else:
            # all jobs arrived at once: fall back to the full elapsed span
            capacity = result.num_nodes * elapsed
            utilization = used / capacity if capacity > 0 else 0.0
        return cls(
            num_jobs=len(jobs),
            avg_wait=_mean(waits),
            max_wait=float(max(waits)) if waits else 0.0,
            p99_wait=float(np.percentile(waits, 99)) if waits else 0.0,
            avg_response=_mean(responses),
            avg_slowdown=_mean(slowdowns),
            utilization=utilization,
            makespan=result.makespan,
            total_core_hours=used / 3600.0,
        )

    def as_dict(self) -> dict[str, float]:
        """All metrics as a flat, JSON-serialisable mapping."""
        return {
            "num_jobs": self.num_jobs,
            "avg_wait": self.avg_wait,
            "max_wait": self.max_wait,
            "p99_wait": self.p99_wait,
            "avg_response": self.avg_response,
            "avg_slowdown": self.avg_slowdown,
            "utilization": self.utilization,
            "makespan": self.makespan,
            "total_core_hours": self.total_core_hours,
        }

    @classmethod
    def from_dict(cls, data: "dict[str, float]") -> "RunMetrics":
        """Rebuild metrics from their :meth:`as_dict` form.

        Round-trip partner of :meth:`as_dict`; sweep rollups persist
        cells as JSON and reports rebuild them through here.
        """
        fields = {f.name for f in dataclasses.fields(cls)}
        unknown = set(data) - fields
        if unknown:
            raise ValueError(f"unknown RunMetrics key(s): {sorted(unknown)}")
        return cls(**{name: data[name] for name in fields})


@dataclass(frozen=True)
class ModeBreakdown:
    """Job-count and core-hour shares per execution mode (Table IV)."""

    job_share: dict[ExecMode, float]
    core_hour_share: dict[ExecMode, float]
    avg_wait: dict[ExecMode, float]

    @classmethod
    def from_jobs(cls, jobs: list[Job]) -> "ModeBreakdown":
        """Aggregate per-execution-mode shares over finished jobs."""
        finished = [j for j in jobs if j.state is JobState.FINISHED]
        total_jobs = len(finished)
        total_ch = sum(j.core_hours for j in finished)
        job_share: dict[ExecMode, float] = {}
        ch_share: dict[ExecMode, float] = {}
        avg_wait: dict[ExecMode, float] = {}
        for mode in ExecMode:
            group = [j for j in finished if j.mode is mode]
            job_share[mode] = len(group) / total_jobs if total_jobs else 0.0
            ch = sum(j.core_hours for j in group)
            ch_share[mode] = ch / total_ch if total_ch else 0.0
            avg_wait[mode] = _mean([j.wait_time for j in group])
        return cls(job_share=job_share, core_hour_share=ch_share, avg_wait=avg_wait)


def wait_by_size_category(
    jobs: list[Job], bounds: list[int]
) -> dict[str, list[float]]:
    """Wait times grouped into job-size categories (Fig 7).

    ``bounds`` are category upper bounds, e.g. ``[511, 1023, 2047, 4095]``
    produces categories ``<=511``, ``512-1023``, ..., ``>=4096``.
    """
    labels = _size_labels(bounds)
    groups: dict[str, list[float]] = {label: [] for label in labels}
    for job in jobs:
        if job.state is not JobState.FINISHED:
            continue
        groups[_size_label(job.size, bounds, labels)].append(job.wait_time)
    return groups


def _size_labels(bounds: list[int]) -> list[str]:
    labels = []
    lo = 1
    for b in bounds:
        labels.append(f"{lo}-{b}" if lo < b else f"{b}")
        lo = b + 1
    labels.append(f">={lo}")
    return labels


def _size_label(size: int, bounds: list[int], labels: list[str]) -> str:
    for b, label in zip(bounds, labels):
        if size <= b:
            return label
    return labels[-1]


def weekly_series(jobs: list[Job], origin: float = 0.0) -> dict[str, np.ndarray]:
    """Per-week total core hours and average wait (Fig 9).

    Jobs are bucketed by submission week relative to ``origin``.
    Returns arrays ``week``, ``core_hours`` and ``avg_wait``.
    """
    finished = [j for j in jobs if j.state is JobState.FINISHED]
    if not finished:
        return {
            "week": np.array([], dtype=np.int64),
            "core_hours": np.array([]),
            "avg_wait": np.array([]),
        }
    weeks = np.array(
        [int((j.submit_time - origin) // SECONDS_PER_WEEK) for j in finished]
    )
    n_weeks = int(weeks.max()) + 1
    core_hours = np.zeros(n_weeks)
    wait_sum = np.zeros(n_weeks)
    count = np.zeros(n_weeks)
    for j, w in zip(finished, weeks):
        core_hours[w] += j.core_hours
        wait_sum[w] += j.wait_time
        count[w] += 1
    avg_wait = np.divide(wait_sum, count, out=np.zeros(n_weeks), where=count > 0)
    return {
        "week": np.arange(n_weeks),
        "core_hours": core_hours,
        "avg_wait": avg_wait,
    }


class MetricsRecorder:
    """Engine observer integrating node occupancy over time.

    Keeps the exact time-weighted utilization
    ``integral(used_nodes dt) / (N * elapsed)`` plus the instantaneous
    utilization samples taken at every scheduling instance, which the
    capability reward function (Eq. 1) also uses.
    """

    def __init__(self, num_nodes: int) -> None:
        self.num_nodes = num_nodes
        self._last_time: float | None = None
        self._last_used = 0
        self._node_seconds = 0.0
        self.instance_utilizations: list[float] = []

    def _advance(self, now: float, used: int) -> None:
        if self._last_time is not None and now > self._last_time:
            self._node_seconds += self._last_used * (now - self._last_time)
        elif self._last_time is None:
            pass
        self._last_time = now
        self._last_used = used

    def on_start(self, job: Job, now: float) -> None:
        """Observer hook: integrate occupancy up to ``now``, then add."""
        # occupancy changes *after* the start; integrate up to now first
        self._advance(now, self._last_used)
        self._last_used += job.size

    def on_finish(self, job: Job, now: float) -> None:
        """Observer hook: integrate occupancy up to ``now``, then subtract."""
        self._advance(now, self._last_used)
        self._last_used -= job.size

    def on_kill(self, job: Job, now: float) -> None:
        """Observer hook: a fault kill frees the job's nodes like a finish."""
        self._advance(now, self._last_used)
        self._last_used -= job.size

    def on_instance(self, view: SchedulingView, started) -> None:
        """Observer hook: sample utilization at each scheduling instance."""
        self.instance_utilizations.append(
            view.cluster.used_nodes / view.cluster.num_nodes
        )

    def occupancy_node_seconds(self, until: float | None = None) -> float:
        """Node-seconds of occupancy integrated so far (or up to ``until``)."""
        total = self._node_seconds
        if until is not None and self._last_time is not None and until > self._last_time:
            total += self._last_used * (until - self._last_time)
        return total

    def utilization(self, elapsed: float) -> float:
        """Time-weighted occupancy utilization over ``elapsed`` seconds."""
        if elapsed <= 0:
            return 0.0
        return self.occupancy_node_seconds() / (self.num_nodes * elapsed)
