"""Decima-PG: the flat reinforcement-learning baseline (paper §IV-A).

Decima (Mao et al., SIGCOMM'19) targets DAG-structured data-processing
jobs and is not directly applicable to rigid HPC jobs, so the paper
evaluates a *modified* Decima: the graph neural network is dropped and
DRAS's state representation is used instead.  The result is a policy
gradient agent **without** the hierarchical structure — no resource
reservation, no backfilling.  It therefore serves as the ablation
baseline isolating the benefit of DRAS's two-level design.

At each scheduling instance the agent repeatedly picks one *runnable*
job (jobs larger than the free node count are masked out) until no
waiting job fits.  Large jobs only run when enough nodes happen to be
free simultaneously — which is exactly why the paper observes severe
starvation of large jobs under this policy (Fig. 7).
"""

from __future__ import annotations

import numpy as np

from repro.core.config import DRASConfig
from repro.core.dras_pg import PGCore
from repro.core.rewards import RewardFunction, make_reward
from repro.core.state import StateEncoder
from repro.nn.network import build_dras_network
from repro.nn.optim import Adam
from repro.schedulers.base import BaseScheduler
from repro.sim.engine import SchedulingView


class DecimaPG(BaseScheduler):
    """Flat policy-gradient scheduler without reservations."""

    name = "Decima-PG"

    def __init__(self, config: DRASConfig, reward: RewardFunction | None = None) -> None:
        self.config = config
        self.reward_fn = (
            reward
            if reward is not None
            else make_reward(config.objective, **config.reward_kwargs)
        )
        self.encoder = StateEncoder(
            num_nodes=config.num_nodes,
            window=config.window,
            time_scale=config.time_scale,
            normalize=config.normalize_state,
        )
        self.rng = np.random.default_rng(config.seed)
        dims = config.pg_dims
        self.network = build_dras_network(
            dims.rows, dims.hidden1, dims.hidden2, dims.outputs, rng=self.rng
        )
        self.optimizer = Adam(
            self.network.parameters(),
            lr=config.learning_rate,
            grad_clip=config.grad_clip,
        )
        self.core = PGCore(
            network=self.network,
            optimizer=self.optimizer,
            encoder=self.encoder,
            rng=self.rng,
            gamma=config.gamma,
            entropy_coef=config.entropy_coef,
        )
        self.learning = True
        self.updates_done = 0
        self._instances_since_update = 0
        self.instance_rewards: list[float] = []

    def train(self) -> "DecimaPG":
        """Training mode: record transitions and update parameters."""
        self.learning = True
        return self

    def eval(self, online_learning: bool = True) -> "DecimaPG":
        """Evaluation mode; ``online_learning=False`` freezes the policy."""
        self.learning = online_learning
        return self

    def schedule(self, view: SchedulingView) -> None:
        """One flat scheduling instance: start runnable window picks.

        Decima-PG is the flat baseline (§IV-B): only jobs that fit the
        free nodes are valid actions, and there is no reservation or
        backfill level.
        """
        selected = []
        instance_reward = 0.0
        n_actions = 0
        while True:
            window = view.window(self.config.window)
            runnable_mask = np.zeros(self.config.window, dtype=bool)
            free = view.free_nodes
            for i, job in enumerate(window):
                runnable_mask[i] = job.size <= free
            if not runnable_mask.any():
                break
            action = self.core.act(
                window, view, record=self.learning, extra_mask=runnable_mask
            )
            job = window[action]
            view.start(job)
            selected.append(job)
            reward = self.reward_fn(selected, view.waiting(), view.cluster, view.now)
            if self.learning:
                self.core.record_reward(reward)
            instance_reward += reward
            n_actions += 1
        self.instance_rewards.append(
            instance_reward / n_actions if n_actions else 0.0
        )
        self._instances_since_update += 1
        if (
            self.learning
            and self._instances_since_update >= self.config.update_every
            and self.core.has_observations()
        ):
            self.core.update()
            self.updates_done += 1
            self._instances_since_update = 0

    def episode_end(self) -> None:
        """Flush any pending transitions with a final update."""
        if self.learning and self.core.has_observations():
            self.core.update()
            self.updates_done += 1
        self._instances_since_update = 0

    def on_simulation_end(self, engine) -> None:  # noqa: ANN001
        """Engine lifecycle hook: finalize the episode."""
        self.episode_end()

    # -- persistence -----------------------------------------------------------
    def state_dict(self) -> dict[str, np.ndarray]:
        """Network parameters keyed by position-qualified names."""
        return self.network.state_dict()

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        """Restore network parameters from :meth:`state_dict` output."""
        self.network.load_state_dict(state)
