"""Lightweight always-on metrics: counters, gauges, EMA wall-clock timers.

A :class:`MetricsRegistry` is a flat namespace of named instruments.
Instruments are plain Python objects with ``__slots__`` and integer /
float arithmetic only — cheap enough to leave enabled permanently in
the simulator hot loop (the engine-throughput benchmark in
``BENCH_sim.json`` measures them as part of the baseline).

Instruments never feed back into simulation state; they are
observe-only, so runs with and without consumers reading them are
bit-identical.

Usage::

    registry = MetricsRegistry()
    registry.counter("jobs.started").inc()
    registry.gauge("queue.depth").set(17)
    with registry.timer("schedule_s").time():
        policy.schedule(view)
    registry.snapshot()   # plain-dict summary of every instrument

:class:`~repro.sim.engine.Engine`, :class:`~repro.rl.trainer.Trainer`
and every scheduler deriving from
:class:`~repro.schedulers.base.BaseScheduler` expose a registry as
``.metrics``.
"""

from __future__ import annotations

import math
import time
from typing import Any

# -- fixed log-binned duration histogram ---------------------------------------
#
# The same log-spaced binning scheme as
# :func:`repro.obs.analyze.latency_histogram`, but with *data-independent*
# edges so a streaming update is deterministic and order-independent:
# 4 bins per decade from 1 microsecond to 100 seconds, plus an underflow
# bin (<= 1e-6 s, including zero/negative samples) and an overflow bin
# (> 1e2 s).   34 integer counts per timer, updated with one ``log10``
# and one list index per observation.

#: interior bin boundaries (``TIMER_HIST_EDGES[i-1], TIMER_HIST_EDGES[i]``
#: bound interior bin ``i``; bin 0 is underflow, bin -1 overflow)
TIMER_HIST_EDGES: tuple[float, ...] = tuple(
    10.0 ** (-6.0 + i / 4.0) for i in range(33)
)
_HIST_TOP = len(TIMER_HIST_EDGES)          # overflow bin index (33)
_LOG_LO = -6.0
_BINS_PER_DECADE = 4.0


def _hist_index(seconds: float) -> int:
    """The histogram bin index for one duration sample."""
    if seconds <= 1e-6:
        return 0
    index = int((math.log10(seconds) - _LOG_LO) * _BINS_PER_DECADE) + 1
    if index < 1:
        return 1
    if index > _HIST_TOP:
        return _HIST_TOP
    return index


def _hist_representative(index: int) -> float:
    """The value reported for a quantile landing in bin ``index``.

    Geometric midpoint of the interior bin; the boundary edge for the
    underflow/overflow bins.  Purely a function of the bin, so quantile
    estimates are deterministic for a given set of counts.
    """
    if index <= 0:
        return TIMER_HIST_EDGES[0]
    if index >= _HIST_TOP:
        return TIMER_HIST_EDGES[-1]
    return math.sqrt(TIMER_HIST_EDGES[index - 1] * TIMER_HIST_EDGES[index])


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def inc(self, n: int = 1) -> None:
        """Add ``n`` (default 1) to the count."""
        self.value += n

    def reset(self) -> None:
        """Zero the count (fresh-run semantics; the name stays bound)."""
        self.value = 0


class Gauge:
    """A value that goes up and down, remembering its extremes."""

    __slots__ = ("value", "min", "max", "samples")

    def __init__(self) -> None:
        self.value = 0.0
        self.min = float("inf")
        self.max = float("-inf")
        self.samples = 0

    def set(self, value: float) -> None:
        """Record the current value of the tracked quantity."""
        self.value = value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        self.samples += 1

    def reset(self) -> None:
        """Forget every sample and the tracked extremes."""
        self.value = 0.0
        self.min = float("inf")
        self.max = float("-inf")
        self.samples = 0


class Timer:
    """Accumulates wall-clock durations with an exponential moving average.

    Durations come from ``time.perf_counter()`` (monotonic, never the
    host date).  ``ema`` smooths with factor ``ema_alpha`` — the first
    observation seeds it, after which
    ``ema = alpha * sample + (1 - alpha) * ema``.

    Every observation also lands in a fixed log-binned histogram
    (``bins``; see :data:`TIMER_HIST_EDGES`), from which
    :meth:`quantile` and the ``p50``/``p90``/``p99`` properties derive
    deterministic nearest-rank estimates — the same samples produce the
    same quantiles in any arrival order.
    """

    __slots__ = ("count", "total", "last", "ema", "ema_alpha", "bins")

    def __init__(self, ema_alpha: float = 0.2) -> None:
        if not 0.0 < ema_alpha <= 1.0:
            raise ValueError("ema_alpha must be in (0, 1]")
        self.count = 0
        self.total = 0.0
        self.last = 0.0
        self.ema = 0.0
        self.ema_alpha = ema_alpha
        #: underflow + 32 log-spaced interior bins + overflow
        self.bins = [0] * (_HIST_TOP + 1)

    def observe(self, seconds: float) -> None:
        """Record one duration sample (in seconds)."""
        self.count += 1
        self.total += seconds
        self.last = seconds
        if self.count == 1:
            self.ema = seconds
        else:
            self.ema += self.ema_alpha * (seconds - self.ema)
        self.bins[_hist_index(seconds)] += 1

    @property
    def mean(self) -> float:
        """Arithmetic mean of all observed durations."""
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Nearest-rank quantile estimate from the binned samples.

        Resolution is the histogram's (4 bins/decade); the estimate is
        the geometric midpoint of the bin holding the ranked sample.
        Returns 0.0 with no observations.
        """
        total = sum(self.bins)
        if total == 0:
            return 0.0
        rank = max(1, min(total, math.ceil(q * total)))
        seen = 0
        for index, bin_count in enumerate(self.bins):
            seen += bin_count
            if seen >= rank:
                return _hist_representative(index)
        return _hist_representative(_HIST_TOP)

    @property
    def p50(self) -> float:
        """Median duration estimate (binned nearest-rank)."""
        return self.quantile(0.50)

    @property
    def p90(self) -> float:
        """90th-percentile duration estimate (binned nearest-rank)."""
        return self.quantile(0.90)

    @property
    def p99(self) -> float:
        """99th-percentile duration estimate (binned nearest-rank)."""
        return self.quantile(0.99)

    def reset(self) -> None:
        """Forget every observation (``ema_alpha`` is kept)."""
        self.count = 0
        self.total = 0.0
        self.last = 0.0
        self.ema = 0.0
        self.bins = [0] * (_HIST_TOP + 1)

    def time(self) -> "_TimerContext":
        """Context manager observing the duration of a ``with`` block."""
        return _TimerContext(self)


class _TimerContext:
    """Context manager produced by :meth:`Timer.time`."""

    __slots__ = ("_timer", "_t0")

    def __init__(self, timer: Timer) -> None:
        self._timer = timer
        self._t0 = 0.0

    def __enter__(self) -> "_TimerContext":
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self._timer.observe(time.perf_counter() - self._t0)


class MetricsRegistry:
    """Flat get-or-create namespace of named instruments.

    Asking for an existing name returns the same instrument object, so
    hot paths can cache the instrument once and skip the dict lookup.
    A name is bound to one instrument kind for the registry's lifetime.
    """

    def __init__(self) -> None:
        self._instruments: dict[str, Any] = {}

    def _get(self, name: str, factory: type, **kwargs: Any) -> Any:
        instrument = self._instruments.get(name)
        if instrument is None:
            instrument = factory(**kwargs)
            self._instruments[name] = instrument
        elif not isinstance(instrument, factory):
            raise TypeError(
                f"metric {name!r} is a {type(instrument).__name__}, "
                f"not a {factory.__name__}"
            )
        return instrument

    def counter(self, name: str) -> Counter:
        """Get or create the counter ``name``."""
        return self._get(name, Counter)

    def gauge(self, name: str) -> Gauge:
        """Get or create the gauge ``name``."""
        return self._get(name, Gauge)

    def timer(self, name: str, ema_alpha: float = 0.2) -> Timer:
        """Get or create the timer ``name``."""
        return self._get(name, Timer, ema_alpha=ema_alpha)

    def alias(self, name: str, instrument: Any) -> None:
        """Bind an existing instrument object under ``name`` here.

        Lets two registries share one instrument so hot paths record a
        sample exactly once (the engine aliases its ``schedule_s`` timer
        and ``instances`` counter into the scheduler's registry at the
        start of every run).  Replaces any previous binding.
        """
        if not isinstance(instrument, (Counter, Gauge, Timer)):
            raise TypeError(f"not an instrument: {type(instrument).__name__}")
        self._instruments[name] = instrument

    def names(self) -> list[str]:
        """All registered instrument names, sorted."""
        return sorted(self._instruments)

    def snapshot(self) -> dict[str, Any]:
        """Summarize every instrument as plain JSON-friendly values.

        Counters map to their integer value; gauges to
        ``{value, min, max, samples}``; timers to
        ``{count, total_s, mean_s, last_s, ema_s, p50_s, p90_s, p99_s,
        hist_counts}`` (``hist_counts`` indexes into
        :data:`TIMER_HIST_EDGES`, underflow first, overflow last).
        """
        out: dict[str, Any] = {}
        for name in sorted(self._instruments):
            instrument = self._instruments[name]
            if isinstance(instrument, Counter):
                out[name] = instrument.value
            elif isinstance(instrument, Gauge):
                # summary dicts are built once per snapshot() call (end
                # of run / scrape), not per observation — the hot-path
                # cost of an instrument is its inc/set/observe
                out[name] = {  # repro: noqa[hot-loop-alloc]
                    "value": instrument.value,
                    "min": instrument.min if instrument.samples else None,
                    "max": instrument.max if instrument.samples else None,
                    "samples": instrument.samples,
                }
            elif isinstance(instrument, Timer):
                out[name] = {  # repro: noqa[hot-loop-alloc]
                    "count": instrument.count,
                    "total_s": instrument.total,
                    "mean_s": instrument.mean,
                    "last_s": instrument.last,
                    "ema_s": instrument.ema,
                    "p50_s": instrument.p50,
                    "p90_s": instrument.p90,
                    "p99_s": instrument.p99,
                    # deliberate copy: the caller gets a stable list
                    # while the timer keeps observing
                    "hist_counts": list(instrument.bins),  # repro: noqa[hot-loop-alloc, hot-rebuild]
                }
        return out

    def reset(self) -> None:
        """Drop every instrument (names become unbound again)."""
        self._instruments.clear()

    def reset_values(self) -> None:
        """Zero every instrument in place (names stay bound).

        Unlike :meth:`reset`, cached instrument references and aliased
        bindings remain valid — the right call between training phases
        or runs when hot paths hold direct instrument references.
        Shared (aliased) instruments are reset once through whichever
        registry resets first; the other registry sees the same zeroed
        object.
        """
        for instrument in self._instruments.values():
            instrument.reset()
