"""Profile-guided hotness ranking over the project call graph.

The RPR5xx performance rules (:mod:`repro.check.perf`) only fire on
code that is *measurably hot*, so cold-path style noise never reaches
the ratchet.  Hotness comes from two ingredients:

1. A committed **profiler baseline** (``profile_baseline.json``,
   written by ``repro bench --emit-profile``): the deterministic call
   counts of the PR-4 profiler scopes over the bench workload.  Call
   counts — not wall seconds — drive the ranking, because they are
   bit-identical across machines while timings are not.
2. A **static call graph** built from the :class:`ProjectModel`:
   direct calls resolve through the import-alias tables, ``self.m()``
   resolves within the class hierarchy, and remaining attribute calls
   fall back to bounded name matching (capped fan-out, with a blocklist
   of ubiquitous container/stdlib method names).

Profiler scopes anchor to functions via :data:`SCOPE_ANCHORS`; anchor
functions score 1.0 and hotness decays by :data:`DECAY` per static call
edge (max over paths).  Functions within :data:`HOT_THRESHOLD` are
*hot*, then *warm*, then *cold*.

When no baseline is discoverable (e.g. the scratch trees used by
tests) there is no hotness model and every RPR5xx rule stays silent —
the same anchor-absent convention as the RPR3xx/RPR4xx families.  Set
``REPRO_PROFILE_BASELINE=<path>`` to point at a specific baseline, or
to ``off`` to disable discovery.
"""

from __future__ import annotations

import ast
import json
import os
from dataclasses import dataclass
from pathlib import Path

from repro.check.project import ModuleInfo, ProjectModel

PROFILE_BASELINE_SCHEMA = "repro.profile-baseline/v1"
DEFAULT_BASELINE_NAME = "profile_baseline.json"
BASELINE_ENV = "REPRO_PROFILE_BASELINE"

#: hotness lost per static call edge away from an anchor
DECAY = 0.5
#: minimum score counted as hot (anchor + up to 3 call hops)
HOT_THRESHOLD = 0.1
#: minimum score counted as warm
WARM_THRESHOLD = 0.01
#: scores below this stop propagating
MIN_SCORE = 1e-3
#: profiler scopes with fewer calls than this do not anchor anything
#: (a scope entered once per run says nothing about per-event cost)
MIN_ANCHOR_CALLS = 16
#: an ambiguous method name matching more candidates than this
#: resolves to nothing
MAX_FANOUT = 8

#: sentinel anchoring the ``schedule`` method of every scheduler
SCHEDULE_ANCHOR = "@scheduler-schedule"
SCHEDULER_BASE = "repro.schedulers.base.BaseScheduler"

#: profiler scope -> functions it measures
SCOPE_ANCHORS: dict[str, tuple[str, ...]] = {
    "engine.run": ("repro.sim.engine.Engine.run",),
    "engine.instance": ("repro.sim.engine.Engine.run",
                        "repro.sim.engine.Engine._run_instance"),
    "engine.schedule": (SCHEDULE_ANCHOR,),
    "nn.forward": ("repro.nn.network.Network.forward",),
    "nn.backward": ("repro.nn.network.Network.backward",),
    "nn.adam_step": ("repro.nn.optim.Adam.step",),
}

#: ubiquitous method names never resolved by bare name matching —
#: they overwhelmingly belong to builtin containers / numpy / stdlib
COMMON_METHOD_NAMES = frozenset({
    "add", "all", "any", "append", "appendleft", "astype", "clear",
    "close", "copy", "count", "decode", "discard", "encode", "endswith",
    "exists", "extend", "fill", "flush", "format", "get", "group",
    "index", "insert", "is_dir", "is_file", "items", "join", "keys",
    "lower", "lstrip", "match", "max", "mean", "min", "mkdir", "open",
    "pop", "popleft", "read", "readline", "readlines", "replace",
    "reshape", "rsplit", "rstrip", "seek", "setdefault", "sort",
    "split", "splitlines", "startswith", "strip", "sum", "tell",
    "tolist", "update", "upper", "values", "write", "writelines",
})


# -- baseline I/O ------------------------------------------------------------

def load_profile_baseline(path: str | Path) -> dict[str, int]:
    """Read a profile baseline; returns scope name -> call count.

    Raises :class:`ValueError` on schema mismatch or malformed scopes.
    """
    with open(path, encoding="utf-8") as fh:
        doc = json.load(fh)
    if not isinstance(doc, dict) or doc.get("schema") != PROFILE_BASELINE_SCHEMA:
        raise ValueError(
            f"{path}: expected schema {PROFILE_BASELINE_SCHEMA!r}, "
            f"got {doc.get('schema') if isinstance(doc, dict) else type(doc).__name__!r}"
        )
    scopes = doc.get("scopes")
    if not isinstance(scopes, list):
        raise ValueError(f"{path}: 'scopes' must be a list")
    counts: dict[str, int] = {}
    for entry in scopes:
        if not isinstance(entry, dict) or "name" not in entry or "calls" not in entry:
            raise ValueError(f"{path}: malformed scope entry {entry!r}")
        counts[str(entry["name"])] = int(entry["calls"])
    return counts


def load_declared_anchor_scopes(path: str | Path) -> tuple[str, ...] | None:
    """The ``anchor_scopes`` provenance stamp of a baseline, if present.

    ``repro bench --emit-profile`` records the anchor-scope set the
    checker understood at generation time.  Baselines written before
    that stamp existed return ``None`` — their staleness cannot be
    verified, so :meth:`Hotness.stale_anchors` treats them as silent
    rather than guessing.
    """
    try:
        with open(path, encoding="utf-8") as fh:
            doc = json.load(fh)
    except (OSError, ValueError):
        return None
    scopes = doc.get("anchor_scopes") if isinstance(doc, dict) else None
    if not isinstance(scopes, list):
        return None
    return tuple(str(s) for s in scopes)


def find_profile_baseline(root: str | Path | None) -> Path | None:
    """Locate the profile baseline for a project rooted at ``root``.

    The ``REPRO_PROFILE_BASELINE`` env var overrides discovery (empty,
    ``off`` or ``0`` disables it); otherwise the baseline is searched
    in ``root`` and up to four parent directories, which reaches the
    repository root from a ``src/<package>`` layout.
    """
    override = os.environ.get(BASELINE_ENV)
    if override is not None:
        if override.strip().lower() in ("", "off", "0", "none"):
            return None
        path = Path(override)
        return path if path.is_file() else None
    if root is None:
        return None
    directory = Path(root)
    for _ in range(5):
        candidate = directory / DEFAULT_BASELINE_NAME
        if candidate.is_file():
            return candidate
        if directory.parent == directory:
            break
        directory = directory.parent
    return None


# -- function index & call graph ---------------------------------------------

@dataclass(frozen=True)
class FunctionInfo:
    """One indexed function or method."""

    qualname: str               #: e.g. ``repro.sim.engine.Engine.run``
    module: ModuleInfo
    cls: str | None             #: owning class name, None for functions
    node: ast.AST               #: the (async) function definition


def index_functions(project: ProjectModel) -> dict[str, FunctionInfo]:
    """Every module-level function and direct method in the project."""
    index: dict[str, FunctionInfo] = {}
    for info in project.modules.values():
        for name, node in info.functions.items():
            index[f"{info.name}.{name}"] = FunctionInfo(
                f"{info.name}.{name}", info, None, node)
        for cls_name, cls_node in info.classes.items():
            for item in cls_node.body:
                if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    qual = f"{info.name}.{cls_name}.{item.name}"
                    index[qual] = FunctionInfo(qual, info, cls_name, item)
    return index


@dataclass(frozen=True)
class CallGraph:
    """Static call edges plus class-instantiation sites per function."""

    edges: dict[str, tuple[str, ...]]
    instantiated: dict[str, tuple[str, ...]]


def _class_qualname(info: ModuleInfo, node: ast.ClassDef) -> str:
    return f"{info.name}.{node.name}"


def build_call_graph(project: ProjectModel,
                     index: dict[str, FunctionInfo]) -> CallGraph:
    """Resolve the calls made by every indexed function."""
    methods_by_name: dict[str, list[str]] = {}
    for qual, fi in index.items():
        if fi.cls is not None:
            methods_by_name.setdefault(fi.node.name, []).append(qual)
    for candidates in methods_by_name.values():
        candidates.sort()

    edges: dict[str, tuple[str, ...]] = {}
    instantiated: dict[str, tuple[str, ...]] = {}
    for qual in sorted(index):
        fi = index[qual]
        targets: set[str] = set()
        classes: set[str] = set()
        for node in ast.walk(fi.node):
            if isinstance(node, ast.Call):
                _resolve_call(project, index, methods_by_name, fi,
                              node.func, targets, classes)
        edges[qual] = tuple(sorted(targets))
        instantiated[qual] = tuple(sorted(classes))
    return CallGraph(edges=edges, instantiated=instantiated)


def _add_resolved(index: dict[str, FunctionInfo], info: ModuleInfo,
                  node: ast.AST, targets: set[str], classes: set[str]) -> bool:
    if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
        qual = f"{info.name}.{node.name}"
        if qual in index:
            targets.add(qual)
            return True
    elif isinstance(node, ast.ClassDef):
        cls_qual = _class_qualname(info, node)
        classes.add(cls_qual)
        init_qual = f"{cls_qual}.__init__"
        if init_qual in index:
            targets.add(init_qual)
        return True
    return False


def _resolve_call(project: ProjectModel, index: dict[str, FunctionInfo],
                  methods_by_name: dict[str, list[str]], fi: FunctionInfo,
                  func: ast.expr, targets: set[str], classes: set[str]) -> None:
    if isinstance(func, ast.Name):
        resolved = project.resolve_local(fi.module, func.id)
        if resolved is not None:
            _add_resolved(index, resolved[0], resolved[1], targets, classes)
        return
    if not isinstance(func, ast.Attribute):
        return
    # self.m(): same class first, then overrides in subclasses
    if (isinstance(func.value, ast.Name) and func.value.id == "self"
            and fi.cls is not None):
        own_class = f"{fi.module.name}.{fi.cls}"
        found = False
        for cls_qual in [own_class] + project.subclasses_of(own_class):
            candidate = f"{cls_qual}.{func.attr}"
            if candidate in index:
                targets.add(candidate)
                found = True
        if found:
            return
    # fully-qualified attribute chain (module.func, imported class, ...)
    dotted = project.qualify(fi.module, func)
    if dotted is not None:
        resolved = project.resolve(dotted)
        if resolved is not None and _add_resolved(index, resolved[0],
                                                  resolved[1], targets, classes):
            return
    # bounded name matching for everything else (x.method())
    if func.attr in COMMON_METHOD_NAMES or func.attr.startswith("__"):
        return
    candidates = methods_by_name.get(func.attr, ())
    if 0 < len(candidates) <= MAX_FANOUT:
        targets.update(candidates)


# -- hotness ------------------------------------------------------------------

def _resolve_anchor(project: ProjectModel, index: dict[str, FunctionInfo],
                    spec: str) -> list[str]:
    if spec == SCHEDULE_ANCHOR:
        anchored = []
        for cls_qual in [SCHEDULER_BASE] + project.subclasses_of(SCHEDULER_BASE):
            candidate = f"{cls_qual}.schedule"
            if candidate in index:
                anchored.append(candidate)
        return sorted(anchored)
    return [spec] if spec in index else []


@dataclass(frozen=True)
class Hotness:
    """The computed hotness model of one project."""

    index: dict[str, FunctionInfo]
    graph: CallGraph
    scores: dict[str, float]
    anchor_calls: dict[str, int]
    baseline_path: str | None = None
    #: ``anchor_scopes`` stamped into the baseline at generation time
    #: (None for pre-stamp baselines, whose staleness is unverifiable)
    declared_scopes: tuple[str, ...] | None = None
    #: scopes with enough baseline calls whose anchor spec resolved to
    #: no function in this project — their measurements gate nothing
    unresolved_scopes: tuple[str, ...] = ()

    def score(self, qualname: str) -> float:
        """Propagated hotness score of ``qualname`` (0.0 when unranked)."""
        return self.scores.get(qualname, 0.0)

    def tier(self, qualname: str) -> str:
        """Hotness tier of ``qualname``: ``hot``, ``warm`` or ``cold``."""
        score = self.score(qualname)
        if score >= HOT_THRESHOLD:
            return "hot"
        if score >= WARM_THRESHOLD:
            return "warm"
        return "cold"

    def is_hot(self, qualname: str) -> bool:
        """Whether ``qualname`` is in the hot tier (rules gate on this)."""
        return self.score(qualname) >= HOT_THRESHOLD

    def hot_functions(self) -> list[FunctionInfo]:
        """Hot functions, deterministically ordered by qualname."""
        return [self.index[q] for q in sorted(self.scores)
                if q in self.index and self.is_hot(q)]

    def ranking(self) -> list[tuple[str, float, int]]:
        """``(qualname, score, anchor_calls)`` rows, hottest first.

        The order is deterministic across machines: it depends only on
        the static call graph and the baseline call counts.
        """
        rows = [(q, s, self.anchor_calls.get(q, 0))
                for q, s in self.scores.items() if q in self.index]
        rows.sort(key=lambda row: (-row[1], -row[2], row[0]))
        return rows

    def stale_anchors(self) -> list[str]:
        """Why this baseline no longer matches the checker's anchors.

        Empty when the baseline is fresh (or predates the provenance
        stamp, in which case staleness is unverifiable and RPR5xx
        gating proceeds as before).  Each message names the mismatch
        and the fix — regenerating via ``repro bench --emit-profile``.
        """
        messages: list[str] = []
        name = self.baseline_path or "profile baseline"
        if self.declared_scopes is not None:
            declared = set(self.declared_scopes)
            current = set(SCOPE_ANCHORS)
            missing = sorted(current - declared)
            extra = sorted(declared - current)
            if missing or extra:
                drift = []
                if missing:
                    drift.append(f"missing scopes {', '.join(missing)}")
                if extra:
                    drift.append(f"obsolete scopes {', '.join(extra)}")
                messages.append(
                    f"profile baseline {name} was generated for a "
                    f"different anchor-scope set ({'; '.join(drift)}); "
                    "RPR5xx gating is degraded — regenerate it with "
                    "`repro bench --emit-profile`"
                )
        for scope in self.unresolved_scopes:
            messages.append(
                f"profile baseline {name} scope '{scope}' has anchor "
                "calls but its anchor resolves to no function in this "
                "project; the measurement gates nothing — regenerate "
                "the baseline with `repro bench --emit-profile`"
            )
        return messages


def compute_hotness(project: ProjectModel, baseline: dict[str, int],
                    baseline_path: str | None = None,
                    declared_scopes: tuple[str, ...] | None = None) -> Hotness:
    """Anchor profiler scopes onto functions and propagate with decay."""
    index = index_functions(project)
    graph = build_call_graph(project, index)
    scores: dict[str, float] = {}
    anchor_calls: dict[str, int] = {}
    unresolved: list[str] = []
    for scope, specs in SCOPE_ANCHORS.items():
        calls = baseline.get(scope, 0)
        if calls < MIN_ANCHOR_CALLS:
            continue
        resolved_any = False
        for spec in specs:
            for qual in _resolve_anchor(project, index, spec):
                resolved_any = True
                scores[qual] = 1.0
                anchor_calls[qual] = max(anchor_calls.get(qual, 0), calls)
        if not resolved_any:
            unresolved.append(scope)
    worklist = sorted(scores)
    while worklist:
        qual = worklist.pop()
        propagated = scores[qual] * DECAY
        if propagated < MIN_SCORE:
            continue
        for callee in graph.edges.get(qual, ()):
            if scores.get(callee, 0.0) < propagated:
                scores[callee] = propagated
                worklist.append(callee)
    return Hotness(index=index, graph=graph, scores=scores,
                   anchor_calls=anchor_calls, baseline_path=baseline_path,
                   declared_scopes=declared_scopes,
                   unresolved_scopes=tuple(unresolved))


_CACHE_ATTR = "_hotness_cache"


def hotness_for_project(project: ProjectModel) -> Hotness | None:
    """Discover the baseline and compute (and cache) the hotness model.

    Returns ``None`` — and the RPR5xx rules stay silent — when no
    baseline is discoverable or it fails to load.
    """
    cached = getattr(project, _CACHE_ATTR, False)
    if cached is not False:
        return cached
    result: Hotness | None = None
    path = find_profile_baseline(getattr(project, "root", None))
    if path is not None:
        try:
            baseline = load_profile_baseline(path)
        except (OSError, ValueError):
            baseline = None
        if baseline:
            result = compute_hotness(
                project, baseline, baseline_path=path.as_posix(),
                declared_scopes=load_declared_anchor_scopes(path))
    setattr(project, _CACHE_ATTR, result)
    return result


def format_ranking(hotness: Hotness, limit: int = 30) -> str:
    """Human-readable hotness table for ``repro check --hotness``."""
    lines = [f"{'score':>7}  {'tier':<5} {'anchor calls':>12}  function"]
    for qual, score, calls in hotness.ranking()[:limit]:
        tier = hotness.tier(qual)
        calls_text = str(calls) if calls else "-"
        lines.append(f"{score:7.3f}  {tier:<5} {calls_text:>12}  {qual}")
    return "\n".join(lines)
