"""Unit tests for trace statistics and model fitting."""

import numpy as np
import pytest

from repro.workload.models import ThetaModel
from repro.workload.stats import analyze_trace, fit_model, size_category_shares
from tests.conftest import make_job


class TestAnalyzeTrace:
    def test_rejects_degenerate_traces(self):
        with pytest.raises(ValueError, match="two jobs"):
            analyze_trace([make_job()])
        with pytest.raises(ValueError, match="zero time span"):
            analyze_trace([make_job(submit=5.0), make_job(submit=5.0)])

    def test_basic_quantities(self):
        jobs = [make_job(size=2, walltime=100.0, runtime=50.0,
                         submit=float(i * 10)) for i in range(11)]
        stats = analyze_trace(jobs, num_nodes=8)
        assert stats.num_jobs == 11
        assert stats.span_seconds == 100.0
        assert stats.arrival_rate == pytest.approx(0.1)
        assert stats.size_mix == {2: 1.0}
        assert stats.max_runtime == 50.0
        assert stats.mean_overestimate == pytest.approx(1.0)  # 100/50 - 1

    def test_profiles_mean_one(self, rng):
        model = ThetaModel.scaled(64)
        jobs = model.generate(2000, rng)
        stats = analyze_trace(jobs, 64)
        assert np.mean(stats.hourly_profile) == pytest.approx(1.0)
        assert np.mean(stats.daily_profile) == pytest.approx(1.0)

    def test_recovers_generator_statistics(self, rng):
        """Analyzing a generated trace recovers the model's parameters."""
        model = ThetaModel.scaled(128)
        jobs = model.generate(4000, rng)
        stats = analyze_trace(jobs, 128)
        assert stats.arrival_rate == pytest.approx(
            model.arrivals.base_rate, rel=0.15
        )
        assert stats.runtime_median == pytest.approx(
            model.runtimes.median, rel=0.2
        )
        assert stats.offered_load_per_node == pytest.approx(
            model.offered_load(), rel=0.25
        )

    def test_dependency_prob(self):
        jobs = [make_job(submit=float(i), job_id=i + 1) for i in range(9)]
        jobs.append(make_job(submit=9.0, deps=(1,), job_id=10))
        stats = analyze_trace(jobs, 8)
        assert stats.dependency_prob == pytest.approx(0.1)

    def test_diurnal_shape_detected(self, rng):
        model = ThetaModel.scaled(64)
        jobs = model.generate(5000, rng)
        stats = analyze_trace(jobs, 64)
        afternoon = np.mean(stats.hourly_profile[12:18])
        night = np.mean(stats.hourly_profile[0:6])
        assert afternoon > night


class TestFitModel:
    def test_fit_generates_similar_trace(self, rng):
        reference = ThetaModel.scaled(128)
        trace = reference.generate(4000, rng)
        fitted = fit_model(trace, 128)
        regenerated = fitted.generate(4000, np.random.default_rng(7))
        a = analyze_trace(trace, 128)
        b = analyze_trace(regenerated, 128)
        assert b.arrival_rate == pytest.approx(a.arrival_rate, rel=0.2)
        assert b.runtime_median == pytest.approx(a.runtime_median, rel=0.3)
        assert b.offered_load_per_node == pytest.approx(
            a.offered_load_per_node, rel=0.35
        )

    def test_size_mix_preserved(self, rng):
        reference = ThetaModel.scaled(128)
        trace = reference.generate(4000, rng)
        fitted = fit_model(trace, 128)
        # fitted support is a subset of observed sizes
        observed = {j.size for j in trace}
        assert set(fitted.sizes.sizes) <= observed

    def test_category_truncation(self, rng):
        jobs = [make_job(size=s % 50 + 1, submit=float(s)) for s in range(500)]
        fitted = fit_model(jobs, 64, max_size_categories=8)
        assert len(fitted.sizes.sizes) <= 8

    def test_fitted_model_is_usable_end_to_end(self, rng):
        from repro.schedulers import FCFSEasy
        from repro.sim.engine import run_simulation

        reference = ThetaModel.scaled(64)
        fitted = fit_model(reference.generate(1000, rng), 64, name="refit")
        jobs = fitted.generate(200, np.random.default_rng(3))
        result = run_simulation(64, FCFSEasy(), jobs)
        assert len(result.finished_jobs) == 200


class TestSizeCategoryShares:
    def test_shares(self):
        jobs = [
            make_job(size=1, walltime=3600.0),
            make_job(size=1, walltime=3600.0),
            make_job(size=10, walltime=3600.0),
        ]
        job_shares, hour_shares = size_category_shares(
            jobs, [(1, 2), (3, 16)]
        )
        assert job_shares == pytest.approx([2 / 3, 1 / 3])
        assert hour_shares == pytest.approx([2 / 12, 10 / 12])

    def test_overflow_folds_into_last(self):
        jobs = [make_job(size=100, walltime=60.0)]
        job_shares, _ = size_category_shares(jobs, [(1, 2), (3, 16)])
        assert job_shares == pytest.approx([0.0, 1.0])

    def test_requires_categories(self):
        with pytest.raises(ValueError):
            size_category_shares([], [])
