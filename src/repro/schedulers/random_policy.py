"""Random scheduling baseline (paper section IV-A).

Randomly selects runnable jobs from the queue until no more fit.  DRAS
behaves like this policy at the very beginning of training (uniform
exploration), so DRAS beating Random demonstrates that learning is
actually improving the policy.
"""

from __future__ import annotations

import numpy as np

from repro.schedulers.base import BaseScheduler
from repro.sim.engine import SchedulingView


class RandomScheduler(BaseScheduler):
    """Uniform random runnable-job selection without reservations."""

    name = "Random"

    def __init__(
        self,
        seed: int | None = 0,
        rng: np.random.Generator | None = None,
    ) -> None:
        # an injected Generator lets callers share one seeded RNG stream
        # across components; the seed default keeps existing runs stable
        self._rng = rng if rng is not None else np.random.default_rng(seed)

    def schedule(self, view: SchedulingView) -> None:
        while True:
            free = view.free_nodes
            # recomputing the runnable set after every start is the
            # algorithm: each start changes ``free``
            runnable = [j for j in view.waiting() if j.size <= free]  # repro: noqa[hot-loop-alloc]
            if not runnable:
                return
            choice = runnable[int(self._rng.integers(len(runnable)))]
            view.start(choice)
