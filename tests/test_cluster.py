"""Unit tests for the node pool."""

import numpy as np
import pytest

from repro.sim.cluster import Cluster
from tests.conftest import make_job


class TestBasics:
    def test_rejects_nonpositive_size(self):
        with pytest.raises(ValueError):
            Cluster(0)

    def test_initially_all_free(self, cluster):
        assert cluster.available_nodes == 8
        assert cluster.used_nodes == 0
        assert cluster.running_job_ids == []

    def test_can_fit(self, cluster):
        assert cluster.can_fit(8)
        assert not cluster.can_fit(9)


class TestAllocation:
    def test_allocate_reduces_free(self, cluster):
        job = make_job(size=3)
        nodes = cluster.allocate(job, now=0.0)
        assert len(nodes) == 3
        assert cluster.available_nodes == 5
        assert cluster.is_running(job.job_id)

    def test_allocate_picks_lowest_indices(self, cluster):
        job = make_job(size=3)
        nodes = cluster.allocate(job, now=0.0)
        assert list(nodes) == [0, 1, 2]

    def test_allocate_overflow_raises(self, cluster):
        cluster.allocate(make_job(size=6), now=0.0)
        with pytest.raises(RuntimeError, match="only 2 free"):
            cluster.allocate(make_job(size=3), now=0.0)

    def test_double_allocate_raises(self, cluster):
        job = make_job(size=2)
        cluster.allocate(job, now=0.0)
        with pytest.raises(RuntimeError, match="already allocated"):
            cluster.allocate(job, now=1.0)

    def test_release_restores_free(self, cluster):
        job = make_job(size=5)
        cluster.allocate(job, now=0.0)
        cluster.release(job)
        assert cluster.available_nodes == 8
        assert not cluster.is_running(job.job_id)

    def test_release_unknown_raises(self, cluster):
        with pytest.raises(RuntimeError, match="not allocated"):
            cluster.release(make_job(size=1))

    def test_released_nodes_reusable(self, cluster):
        a = make_job(size=8)
        cluster.allocate(a, now=0.0)
        cluster.release(a)
        b = make_job(size=8)
        assert len(cluster.allocate(b, now=1.0)) == 8


class TestNodeState:
    def test_shape(self, cluster):
        state = cluster.node_state(now=0.0)
        assert state.shape == (8, 2)

    def test_free_nodes_encoding(self, cluster):
        state = cluster.node_state(now=0.0)
        assert np.all(state[:, 0] == 1.0)
        assert np.all(state[:, 1] == 0.0)

    def test_busy_nodes_encoding(self, cluster):
        cluster.allocate(make_job(size=3, walltime=100.0), now=10.0)
        state = cluster.node_state(now=50.0)
        # nodes 0..2 busy until t=110, i.e. 60 s from now
        assert np.all(state[:3, 0] == 0.0)
        assert np.allclose(state[:3, 1], 60.0)
        assert np.all(state[3:, 0] == 1.0)
        assert np.all(state[3:, 1] == 0.0)

    def test_remaining_time_never_negative(self, cluster):
        cluster.allocate(make_job(size=2, walltime=10.0), now=0.0)
        state = cluster.node_state(now=100.0)  # past the estimate
        assert np.all(state[:2, 1] == 0.0)


class TestShadowTime:
    def test_fits_now(self, cluster):
        assert cluster.shadow_time(4, now=7.0) == 7.0

    def test_single_blocking_job(self, cluster):
        cluster.allocate(make_job(size=6, walltime=100.0), now=0.0)
        # need 4, free 2 -> wait for the size-6 job's estimate at t=100
        assert cluster.shadow_time(4, now=0.0) == 100.0

    def test_staggered_releases(self, cluster):
        cluster.allocate(make_job(size=4, walltime=50.0), now=0.0)   # free at 50
        cluster.allocate(make_job(size=4, walltime=200.0), now=0.0)  # free at 200
        assert cluster.shadow_time(3, now=0.0) == 50.0
        assert cluster.shadow_time(4, now=0.0) == 50.0
        assert cluster.shadow_time(5, now=0.0) == 200.0
        assert cluster.shadow_time(8, now=0.0) == 200.0

    def test_oversized_raises(self, cluster):
        with pytest.raises(ValueError, match="exceeds cluster size"):
            cluster.shadow_time(9, now=0.0)

    def test_free_nodes_at(self, cluster):
        cluster.allocate(make_job(size=4, walltime=50.0), now=0.0)
        cluster.allocate(make_job(size=4, walltime=200.0), now=0.0)
        assert cluster.free_nodes_at(0.0, now=0.0) == 0
        assert cluster.free_nodes_at(50.0, now=0.0) == 4
        assert cluster.free_nodes_at(199.0, now=0.0) == 4
        assert cluster.free_nodes_at(200.0, now=0.0) == 8


class TestAccounting:
    def test_used_node_seconds_after_release(self, cluster):
        job = make_job(size=4, walltime=100.0, runtime=60.0)
        cluster.allocate(job, now=0.0)
        cluster.release(job)
        assert cluster.used_node_seconds() == 4 * 60.0

    def test_reset(self, cluster):
        cluster.allocate(make_job(size=4), now=0.0)
        cluster.reset()
        assert cluster.available_nodes == 8
        assert cluster.used_node_seconds() == 0.0
