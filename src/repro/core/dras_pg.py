"""DRAS-PG: the policy-gradient variant (paper §III-B, Eq. 3).

The network parameterizes the scheduling policy
:math:`\\pi_\\theta(s_k, a_k)`: input ``[2W + N, 2]``, output ``W``
softmax probabilities — one per window slot.  Actions are drawn
stochastically; invalid slots (window not full, or jobs that a flat
agent may not start) are masked and the valid probabilities rescaled.

Learning is REINFORCE with a per-step baseline:

.. math::

   \\theta \\leftarrow \\theta + \\alpha \\sum_{k=1}^{K}
       \\nabla_\\theta \\log \\pi_\\theta(s_k, a_k)
       \\Big( \\sum_{k'=k}^{K} r_{k'} - b_k \\Big)

with :math:`b_k` the cumulative reward from step ``k`` onwards averaged
over all past parameter updates.  The step is taken with Adam
(lr = 0.001) every 10 scheduling instances, after which the memory is
cleared (§III-C).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.agent import HierarchicalAgent
from repro.core.config import DRASConfig
from repro.core.rewards import RewardFunction
from repro.core.state import StateEncoder
from repro.nn.losses import masked_softmax, policy_gradient_loss, sample_from_probs
from repro.nn.network import Network, build_dras_network
from repro.nn.optim import Adam
from repro.sim.engine import SchedulingView
from repro.sim.job import Job


class BaselineTracker:
    """Per-step running average of returns over past parameter updates.

    Implements the paper's baseline :math:`b_k`: the cumulative reward
    from step ``k`` onwards averaged over every previous update.  The
    arrays grow lazily as longer trajectories appear.
    """

    def __init__(self) -> None:
        self._sums = np.zeros(0)
        self._counts = np.zeros(0)

    def baselines(self, k: int) -> np.ndarray:
        """Baselines for steps ``0..k-1`` (zero where nothing seen yet)."""
        out = np.zeros(k)
        n = min(k, self._sums.size)
        with np.errstate(invalid="ignore", divide="ignore"):
            seen = self._counts[:n] > 0
            out[:n][seen] = self._sums[:n][seen] / self._counts[:n][seen]
        return out

    def observe(self, returns: np.ndarray) -> None:
        """Fold one trajectory's returns into the running averages."""
        k = returns.size
        if k > self._sums.size:
            self._sums = np.concatenate([self._sums, np.zeros(k - self._sums.size)])
            self._counts = np.concatenate(
                [self._counts, np.zeros(k - self._counts.size)]
            )
        self._sums[:k] += returns
        self._counts[:k] += 1


@dataclass(slots=True)
class _Transition:
    x: np.ndarray
    mask: np.ndarray
    action: int
    reward: float | None = None


@dataclass
class PGCore:
    """Shared policy-gradient machinery (used by DRAS-PG and Decima-PG)."""

    network: Network
    optimizer: Adam
    encoder: StateEncoder
    rng: np.random.Generator
    gamma: float = 1.0
    entropy_coef: float = 0.0
    greedy: bool = False
    baseline: BaselineTracker = field(default_factory=BaselineTracker)
    pending: list[_Transition] = field(default_factory=list)
    losses: list[float] = field(default_factory=list)
    #: when True, :attr:`last_entropy` is refreshed on every update
    #: (telemetry support; off by default to keep updates lean)
    collect_stats: bool = False
    #: mean policy entropy (nats/decision) of the most recent update
    #: batch; NaN until :attr:`collect_stats` sees an update
    last_entropy: float = float("nan")
    #: transitions stacked into the most recent parameter update — the
    #: minibatch the single backward + Adam step amortized over (0
    #: until the first update; always-on, the counter is free)
    last_update_batch: int = 0

    def score_window(self, x: np.ndarray, masks: np.ndarray) -> np.ndarray:
        """Masked action probabilities for a batch of windows.

        ``x`` is a ``[B, 2W + N, 2]`` observation matrix (one row per
        window, e.g. from
        :meth:`~repro.core.state.StateEncoder.encode_windows`) and
        ``masks`` the matching ``[B, W]`` validity masks.  One network
        forward scores all ``B`` windows; returns ``[B, W]``
        probabilities with masked entries at zero.  This is the single
        inference entry point — per-decision scoring is the ``B = 1``
        case, and serving can push arbitrarily many concurrent windows
        through one call.
        """
        if x.ndim != 3:
            raise ValueError(f"score_window expects [B, rows, 2], got {x.shape}")
        if masks.ndim != 2 or masks.shape[0] != x.shape[0]:
            raise ValueError(
                f"mask batch {masks.shape} does not match obs batch {x.shape}"
            )
        if not masks.any(axis=1).all():
            raise ValueError("no valid action in window")
        logits = self.network.forward(x)
        return masked_softmax(logits, masks)

    def policy(self, window: list[Job], view: SchedulingView,
               extra_mask: np.ndarray | None = None) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Action probabilities over the window.

        Returns ``(x, mask, probs)``.  ``extra_mask`` ANDs additional
        validity constraints (e.g. Decima-PG's runnable-only rule) into
        the window mask.  One decision is scored as the batch-of-one
        case of :meth:`score_window` — there is no separate
        single-sample network path.
        """
        xs, masks = self.encoder.encode_windows([window], view.cluster, view.now)
        if extra_mask is not None:
            masks = masks & extra_mask[None, :]
        probs = self.score_window(xs, masks)
        return xs[0], masks[0], probs[0]

    def act(self, window: list[Job], view: SchedulingView, record: bool,
            extra_mask: np.ndarray | None = None) -> int:
        """Pick one window slot (sampled, or argmax when greedy).

        With ``record=True`` the transition is kept for the next
        REINFORCE update.
        """
        x, mask, probs = self.policy(window, view, extra_mask)
        if self.greedy:
            action = int(np.argmax(probs))
        else:
            action = sample_from_probs(probs, self.rng)
        if record:
            self.pending.append(_Transition(x=x, mask=mask, action=action))
        return action

    def record_reward(self, reward: float) -> None:
        """Attach the post-action reward to the pending transition."""
        if not self.pending or self.pending[-1].reward is not None:
            raise RuntimeError("no pending transition awaiting a reward")
        self.pending[-1].reward = float(reward)

    def has_observations(self) -> bool:
        """Whether any pending transition has its reward and can train."""
        return any(t.reward is not None for t in self.pending)

    def update(self) -> float:
        """One REINFORCE/Adam step over the collected trajectory.

        The stacked transitions form one ``[K, rows, 2]`` minibatch:
        a single batched forward/backward produces gradients summed
        over all ``K`` decisions, and one Adam step applies them —
        never one optimizer step per sample.
        """
        batch = [t for t in self.pending if t.reward is not None]
        self.pending.clear()
        self.last_update_batch = len(batch)
        if not batch:
            return 0.0
        rewards = np.array([t.reward for t in batch])
        if self.gamma >= 1.0:
            returns = np.cumsum(rewards[::-1])[::-1].copy()
        else:
            returns = np.empty_like(rewards)
            acc = 0.0
            for i in range(rewards.size - 1, -1, -1):
                acc = rewards[i] + self.gamma * acc
                returns[i] = acc
        advantages = returns - self.baseline.baselines(returns.size)
        self.baseline.observe(returns)

        x = np.stack([t.x for t in batch])
        masks = np.stack([t.mask for t in batch])
        actions = np.array([t.action for t in batch])

        self.network.zero_grad()
        logits = self.network.forward(x)
        loss, grad = policy_gradient_loss(
            logits, masks, actions, advantages, entropy_coef=self.entropy_coef
        )
        self.network.backward(grad)
        self.optimizer.step()
        self.losses.append(loss)
        if self.collect_stats:
            probs = masked_softmax(logits, masks)
            with np.errstate(divide="ignore", invalid="ignore"):
                log_p = np.where(probs > 0, np.log(probs), 0.0)
            self.last_entropy = float(np.mean(-(probs * log_p).sum(axis=1)))
        return loss


class DRASPG(HierarchicalAgent):
    """The hierarchical policy-gradient DRAS agent."""

    name = "DRAS-PG"

    def __init__(self, config: DRASConfig, reward: RewardFunction | None = None) -> None:
        super().__init__(config, reward)
        dims = config.pg_dims
        self.network = build_dras_network(
            dims.rows, dims.hidden1, dims.hidden2, dims.outputs, rng=self.rng
        )
        self.optimizer = Adam(
            self.network.parameters(),
            lr=config.learning_rate,
            grad_clip=config.grad_clip,
        )
        self.core = PGCore(
            network=self.network,
            optimizer=self.optimizer,
            encoder=self.encoder,
            rng=self.rng,
            gamma=config.gamma,
            entropy_coef=config.entropy_coef,
            greedy=False,
        )

    # -- HierarchicalAgent interface ----------------------------------------
    def select(self, window: list[Job], view: SchedulingView, level: int) -> Job:
        """Draw one job from the masked policy over the window."""
        self.core.greedy = self.config.greedy_eval and not self.learning
        action = self.core.act(window, view, record=self.learning)
        return window[action]

    def record_reward(self, reward: float) -> None:
        """Attach the post-action reward to the pending transition."""
        self.core.record_reward(reward)

    def update(self) -> None:
        """One REINFORCE/Adam step over the collected transitions."""
        self.core.update()

    def _has_observations(self) -> bool:
        return self.core.has_observations()

    # -- persistence -----------------------------------------------------------
    def state_dict(self) -> dict[str, np.ndarray]:
        """Network parameters keyed by position-qualified names."""
        return self.network.state_dict()

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        """Restore network parameters from :meth:`state_dict` output."""
        self.network.load_state_dict(state)
