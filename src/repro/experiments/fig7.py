"""Fig 7 — job wait times by job size and execution mode (starvation).

The paper scatters every Theta job's wait time against its size,
colored by execution mode, one panel per method.  Key observations to
reproduce:

1. DRAS and FCFS prevent starvation — their maximum wait times are
   within a small factor of each other — while Decima-PG, BinPacking
   and Random starve jobs for an order of magnitude longer;
2. in the reservation-less methods, large jobs wait noticeably longer
   than small jobs; with FCFS/DRAS the gap is small;
3. under FCFS/DRAS almost all large jobs run via reservation and most
   small jobs via backfilling.

We summarize the scatter as per-size-category wait statistics plus the
per-mode composition of each category.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.comparison import starvation_summary
from repro.analysis.tables import format_table
from repro.experiments.common import METHOD_ORDER, full_comparison, system_setup
from repro.sim.job import ExecMode, JobState
from repro.sim.metrics import wait_by_size_category


@dataclass(frozen=True)
class WaitBySize:
    method: str
    #: {size category: (count, mean wait h, max wait h)}
    categories: dict[str, tuple[int, float, float]]
    #: {size category: {mode: job count}}
    mode_mix: dict[str, dict[str, int]]
    max_wait_days: float


def _bounds(num_nodes: int) -> list[int]:
    """Size-category bounds scaled from the paper's Theta categories."""
    paper = [511, 1023, 2047, 4095]
    return sorted({max(1, round(b * num_nodes / 4360)) for b in paper})


def run(scale: str = "default", seed: int = 0) -> dict[str, WaitBySize]:
    setup = system_setup("theta", scale, seed)
    bounds = _bounds(setup.model.num_nodes)
    results = full_comparison("theta", scale, seed)
    out: dict[str, WaitBySize] = {}
    for name in METHOD_ORDER:
        res = results[name]
        finished = [j for j in res.result.jobs if j.state is JobState.FINISHED]
        groups = wait_by_size_category(finished, bounds)
        categories = {}
        mode_mix: dict[str, dict[str, int]] = {}
        for label, waits in groups.items():
            if waits:
                categories[label] = (
                    len(waits),
                    float(np.mean(waits)) / 3600.0,
                    float(np.max(waits)) / 3600.0,
                )
            else:
                categories[label] = (0, 0.0, 0.0)
        # mode composition per category
        from repro.sim.metrics import _size_label, _size_labels  # noqa: PLC0415

        labels = _size_labels(bounds)
        for label in labels:
            mode_mix[label] = {m.value: 0 for m in ExecMode}
        for j in finished:
            label = _size_label(j.size, bounds, labels)
            if j.mode is not None:
                mode_mix[label][j.mode.value] += 1
        out[name] = WaitBySize(
            method=name,
            categories=categories,
            mode_mix=mode_mix,
            max_wait_days=max((j.wait_time for j in finished), default=0.0) / 86400.0,
        )
    return out


def report(results: dict[str, WaitBySize]) -> str:
    blocks = []
    for name, r in results.items():
        rows = []
        for label, (count, mean_h, max_h) in r.categories.items():
            mix = r.mode_mix[label]
            rows.append(
                [
                    label,
                    count,
                    f"{mean_h:.2f}",
                    f"{max_h:.2f}",
                    mix["ready"],
                    mix["reserved"],
                    mix["backfilled"],
                ]
            )
        blocks.append(
            format_table(
                [
                    "size (nodes)",
                    "jobs",
                    "mean wait (h)",
                    "max wait (h)",
                    "ready",
                    "reserved",
                    "backfilled",
                ],
                rows,
                title=f"Fig 7 [{name}]: wait time by job size "
                f"(max wait {r.max_wait_days:.1f} days)",
            )
        )
    return "\n\n".join(blocks)


def starvation(scale: str = "default", seed: int = 0) -> dict[str, dict[str, float]]:
    """The starvation indicators highlighted by the Fig 7 ellipses."""
    setup = system_setup("theta", scale, seed)
    results = full_comparison("theta", scale, seed)
    ordered = [results[name] for name in METHOD_ORDER]
    return starvation_summary(
        ordered, large_job_threshold=max(2, setup.model.num_nodes // 2)
    )
