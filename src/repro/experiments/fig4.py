"""Fig 4 — quality and convergence of DRAS-PG under jobset orderings.

The paper trains DRAS-PG with the three curriculum phases in different
orders and compares the validation-reward curves.  Expected shape:

* **sampled -> real -> synthetic** converges fastest to the best model;
* **real-first** also converges but to a worse model;
* **synthetic-first** converges slowly;
* the first few episodes alone (real jobsets only) do not converge.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.plots import sparkline
from repro.analysis.tables import format_table
from repro.experiments.common import get_scale, make_agent, system_setup
from repro.rl.curriculum import compare_phase_orders

ORDERS: tuple[tuple[str, ...], ...] = (
    ("sampled", "real", "synthetic"),
    ("real", "sampled", "synthetic"),
    ("synthetic", "sampled", "real"),
)


@dataclass(frozen=True)
class OrderingResult:
    order: tuple[str, ...]
    validation_curve: tuple[float, ...]
    converged_at: int | None
    final_reward: float
    best_reward: float


def run(scale: str = "default", seed: int = 0) -> list[OrderingResult]:
    sc = get_scale(scale)
    setup = system_setup("theta", scale, seed)
    histories = compare_phase_orders(
        lambda: make_agent("pg", setup.config),
        setup.model,
        setup.train_trace,
        setup.validation_trace,
        seed=seed,
        orders=ORDERS,
        n_sampled=sc.n_sampled,
        n_real=sc.n_real,
        n_synthetic=sc.n_synthetic,
        jobs_per_set=sc.jobs_per_set,
    )
    out = []
    for order, history in histories.items():
        curve = history.validation_curve
        out.append(
            OrderingResult(
                order=order,
                validation_curve=tuple(float(v) for v in curve),
                converged_at=history.converged_at(),
                final_reward=float(curve[-1]),
                best_reward=float(curve.max()),
            )
        )
    return out


def report(results: list[OrderingResult]) -> str:
    rows = []
    for r in results:
        rows.append(
            [
                " -> ".join(r.order),
                len(r.validation_curve),
                "never" if r.converged_at is None else str(r.converged_at),
                f"{r.final_reward:.2f}",
                f"{r.best_reward:.2f}",
            ]
        )
    table = format_table(
        ["jobset order", "episodes", "converged at", "final val reward", "best"],
        rows,
        title="Fig 4: DRAS-PG convergence under different jobset orderings",
    )
    curves = "\n".join(
        f"  {' -> '.join(r.order)}: "
        + " ".join(f"{v:.1f}" for v in r.validation_curve)
        + "   " + sparkline(r.validation_curve)
        for r in results
    )
    return table + "\n\nvalidation reward per episode:\n" + curves


def history_curves(results: list[OrderingResult]) -> dict[str, np.ndarray]:
    """Curves keyed by ordering label, for plotting or assertions."""
    return {
        " -> ".join(r.order): np.array(r.validation_curve) for r in results
    }


__all__ = ["ORDERS", "OrderingResult", "run", "report", "history_curves"]
