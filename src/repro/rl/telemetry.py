"""Per-episode RL training telemetry (JSONL, schema ``repro.telemetry/v1``).

Answers "is training healthy?" without re-running anything: every
episode the :class:`~repro.rl.trainer.Trainer` appends one JSON record
with the learning signals (loss, gradient norm, policy entropy,
epsilon), the reward curve, and the simulator-side load statistics
(queue depth, utilization).  Records are flushed as they are written,
so a crashed training run leaves a readable file up to its last
completed episode.

Anomaly detection is split in two layers:

* :func:`detect_anomalies` is pure — it flags suspicious episodes
  (``nan_grad``, ``reward_collapse``, ``utilization_drop``) from the
  record plus its history and returns the flags, which the trainer
  stores in the record itself;
* :func:`raise_hard_anomalies` routes the one *hard* failure
  (non-finite learning signals) through the existing sanitizer
  machinery: under ``REPRO_SANITIZE=1`` it raises
  :class:`~repro.check.sanitize.SanitizerError` — after the record has
  been written, so the evidence survives the crash.

The soft flags (reward collapse, utilization drop) never raise; real
training runs regularly brush against them early on.
"""

from __future__ import annotations

import json
import math
import warnings
from pathlib import Path
from typing import Any, Iterable, Mapping, Sequence

from repro.check.sanitize import SanitizerError, sanitizer_enabled

#: schema tag stamped on the meta line of every telemetry file
TELEMETRY_SCHEMA = "repro.telemetry/v1"

#: anomaly flag names (the only values that appear in ``anomalies``)
ANOMALY_NAN_GRAD = "nan_grad"
ANOMALY_REWARD_COLLAPSE = "reward_collapse"
ANOMALY_UTILIZATION_DROP = "utilization_drop"


class TelemetryWarning(UserWarning):
    """Warning category for skipped lines in lenient telemetry reads."""


class TelemetryWriter:
    """Appends one JSON line per training episode to a file.

    The first line is a ``meta`` record carrying the schema tag; each
    call to :meth:`write_episode` appends an ``episode`` record and
    flushes, so the file is readable mid-run and after a crash.  Use as
    a context manager, or call :meth:`close` explicitly::

        with TelemetryWriter("run.telemetry.jsonl") as telemetry:
            trainer = Trainer(agent, 256, telemetry=telemetry)
            trainer.train(jobsets)
    """

    def __init__(self, path: str | Path, meta: Mapping[str, Any] | None = None,
                 resume_at: int | None = None):
        self.path = Path(path)
        self._closed = False
        self.n_written = 0
        if resume_at is not None and self.path.exists():
            # checkpoint resume: drop any records written after the
            # checkpointed byte offset (they belong to lost episodes),
            # then continue appending — no second meta header
            fh = self.path.open("r+", encoding="utf-8")
            fh.truncate(resume_at)
            fh.seek(0, 2)  # to end-of-file after the truncation
            self._fh = fh
            return
        self._fh = self.path.open("w", encoding="utf-8")
        header: dict[str, Any] = {"type": "meta", "schema": TELEMETRY_SCHEMA}
        if meta:
            header.update(meta)
        self._write_line(header)

    def _write_line(self, record: Mapping[str, Any]) -> None:
        self._fh.write(json.dumps(record, sort_keys=True,
                                  allow_nan=True) + "\n")
        self._fh.flush()

    def write_episode(self, record: Mapping[str, Any]) -> None:
        """Append one episode record (``type`` is stamped here)."""
        if self._closed:
            raise ValueError("telemetry writer is closed")
        doc = dict(record)
        doc["type"] = "episode"
        self._write_line(doc)
        self.n_written += 1

    def offset(self) -> int:
        """Current byte offset of the file (for checkpoint resume)."""
        self._fh.flush()
        return self._fh.tell()

    def close(self) -> None:
        """Flush and close the underlying file (idempotent)."""
        if not self._closed:
            self._closed = True
            self._fh.close()

    def __enter__(self) -> "TelemetryWriter":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


def read_telemetry(
    path: str | Path, strict: bool = False
) -> list[dict[str, Any]]:
    """Read a telemetry JSONL file back into a list of dicts.

    JSON treats ``NaN``/``Infinity`` literals as an extension; the
    reader accepts them (Python's parser does by default).  With
    ``strict=False`` (the default — telemetry files from crashed runs
    are a primary input) malformed lines are skipped with a
    :class:`TelemetryWarning`; with ``strict=True`` they raise
    ``ValueError``.
    """
    records: list[dict[str, Any]] = []
    with Path(path).open("r", encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, start=1):
            if not line.strip():
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as exc:
                if strict:
                    raise ValueError(
                        f"{path}:{lineno}: invalid JSON: {exc}"
                    ) from exc
                warnings.warn(
                    f"{path}:{lineno}: skipping invalid JSON line",
                    TelemetryWarning, stacklevel=2,
                )
                continue
            if not isinstance(record, dict):
                if strict:
                    raise ValueError(
                        f"{path}:{lineno}: expected an object, "
                        f"got {type(record).__name__}"
                    )
                warnings.warn(
                    f"{path}:{lineno}: skipping non-object record",
                    TelemetryWarning, stacklevel=2,
                )
                continue
            records.append(record)
    return records


def episode_records(
    records: Iterable[Mapping[str, Any]],
) -> list[dict[str, Any]]:
    """The ``episode`` records of a telemetry document, in file order."""
    return [dict(r) for r in records if r.get("type") == "episode"]


def _finite(value: Any) -> bool:
    return isinstance(value, (int, float)) and math.isfinite(value)


def _values(history: Sequence[Mapping[str, Any]], key: str) -> list[float]:
    return [float(r[key]) for r in history if _finite(r.get(key))]


def detect_anomalies(
    record: Mapping[str, Any],
    history: Sequence[Mapping[str, Any]] = (),
) -> list[str]:
    """Flag suspicious signals in one episode record (pure; never raises).

    ``history`` is the episode records *before* this one.  Flags:

    * ``nan_grad`` — ``grad_norm`` or ``loss`` is present but
      non-finite.  The learning signal is corrupt; later parameters
      are garbage.
    * ``reward_collapse`` — with at least 3 prior finite train rewards,
      this episode's train reward sits more than 4 standard deviations
      below their mean.  The policy fell off a cliff (often a sign of
      an exploding update the clip did not catch).
    * ``utilization_drop`` — with at least 3 prior finite utilization
      samples averaging above zero, this episode's utilization is below
      half that average.  The policy stopped packing the machine.
    """
    flags: list[str] = []
    for key in ("grad_norm", "loss"):
        value = record.get(key)
        if isinstance(value, (int, float)) and not math.isfinite(value):
            flags.append(ANOMALY_NAN_GRAD)
            break

    reward = record.get("train_reward")
    prior_rewards = _values(history, "train_reward")
    if _finite(reward) and len(prior_rewards) >= 3:
        mean = sum(prior_rewards) / len(prior_rewards)
        var = sum((v - mean) ** 2 for v in prior_rewards) / len(prior_rewards)
        std = math.sqrt(var)
        if std > 0 and float(reward) < mean - 4.0 * std:
            flags.append(ANOMALY_REWARD_COLLAPSE)

    utilization = record.get("utilization")
    prior_util = _values(history, "utilization")
    if _finite(utilization) and len(prior_util) >= 3:
        mean = sum(prior_util) / len(prior_util)
        if mean > 0 and float(utilization) < 0.5 * mean:
            flags.append(ANOMALY_UTILIZATION_DROP)
    return flags


def raise_hard_anomalies(
    flags: Sequence[str], record: Mapping[str, Any]
) -> None:
    """Escalate hard anomalies through the sanitizer machinery.

    Only ``nan_grad`` is hard — a non-finite learning signal poisons
    every later parameter, so continuing silently is the worst outcome.
    Under ``REPRO_SANITIZE=1`` this raises
    :class:`~repro.check.sanitize.SanitizerError`; otherwise it is a
    no-op (the flag is already durable in the telemetry file).  Soft
    flags (reward collapse, utilization drop) never raise.
    """
    if ANOMALY_NAN_GRAD in flags and sanitizer_enabled():
        raise SanitizerError(
            "telemetry: non-finite learning signal at episode "
            f"{record.get('episode')} (phase {record.get('phase')!r}): "
            f"loss={record.get('loss')} grad_norm={record.get('grad_norm')}"
        )
