"""Run-everything orchestrator.

Regenerates every table and figure of the paper at one scale and
assembles a combined report, in the paper's presentation order.  The
CLI exposes this as ``python -m repro reproduce all``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Callable, Mapping

if TYPE_CHECKING:
    from repro.experiments.pool import SweepSpec

from repro.experiments import (
    faultsweep,
    fig2,
    fig3,
    fig4,
    fig5,
    fig6,
    fig7,
    fig8,
    fig9,
    overhead,
    table1,
    table2,
    table3,
    table4,
)


@dataclass(frozen=True)
class ExperimentSpec:
    """One runnable experiment: id, runner, reporter."""

    exp_id: str
    run: Callable[..., object]
    report: Callable[[object], str]
    needs_scale: bool = True


SPECS: tuple[ExperimentSpec, ...] = (
    ExperimentSpec("table1", lambda **_: table1.run(), table1.report, False),
    ExperimentSpec("table2", table2.run, table2.report),
    ExperimentSpec("fig2", fig2.run, fig2.report),
    ExperimentSpec("fig3", fig3.run, fig3.report),
    ExperimentSpec("table3", lambda **_: table3.run(), table3.report, False),
    ExperimentSpec("fig4", fig4.run, fig4.report),
    ExperimentSpec("fig5", fig5.run, fig5.report),
    ExperimentSpec("fig6", fig6.run, fig6.report),
    ExperimentSpec("fig7", fig7.run, fig7.report),
    ExperimentSpec("table4", table4.run, table4.report),
    ExperimentSpec("fig8", fig8.run, fig8.report),
    ExperimentSpec("fig9", fig9.run, fig9.report),
    ExperimentSpec("faultsweep", faultsweep.run, faultsweep.report),
    ExperimentSpec(
        "overhead",
        lambda full_size=True, **_: overhead.run(full_size=full_size),
        overhead.report,
        False,
    ),
)


def run_one(
    exp_id: str,
    scale: str = "default",
    seed: int = 0,
    full_size_overhead: bool = True,
) -> str:
    """Run a single experiment by id and return its rendered report."""
    by_id = {s.exp_id: s for s in SPECS}
    if exp_id not in by_id:
        raise ValueError(f"unknown experiment id: {exp_id!r}")
    spec = by_id[exp_id]
    if spec.needs_scale:
        result = spec.run(scale, seed=seed)
    elif exp_id == "overhead":
        result = spec.run(full_size=full_size_overhead)
    else:
        result = spec.run()
    return spec.report(result)


def run_all(
    scale: str = "default",
    seed: int = 0,
    only: tuple[str, ...] | None = None,
    full_size_overhead: bool = True,
    progress: Callable[[str], None] | None = None,
    manifest_path: str | None = None,
) -> dict[str, str]:
    """Run every (or the selected) experiment; return rendered reports.

    Experiments share cached traces and trained agents within the
    process, so the full sweep costs little more than Fig 6 alone plus
    the training-order study.

    With ``manifest_path`` a :class:`~repro.obs.manifest.RunManifest` is
    written there, recording the scale, seed, git SHA, selected
    experiments and per-experiment wall durations.
    """
    selected = {s.exp_id: s for s in SPECS}
    if only is not None:
        unknown = set(only) - set(selected)
        if unknown:
            raise ValueError(f"unknown experiment ids: {sorted(unknown)}")
        selected = {k: v for k, v in selected.items() if k in only}
    reports: dict[str, str] = {}
    durations: dict[str, float] = {}
    for exp_id in selected:
        start = time.perf_counter()
        reports[exp_id] = run_one(exp_id, scale, seed=seed,
                                  full_size_overhead=full_size_overhead)
        durations[exp_id] = round(time.perf_counter() - start, 3)
        if progress is not None:
            progress(f"{exp_id}: done in {durations[exp_id]:.1f} s")
    if manifest_path is not None:
        from repro.obs.manifest import RunManifest

        RunManifest.create(
            kind="reproduce",
            seed=seed,
            config={
                "scale": scale,
                "experiments": sorted(selected),
                "full_size_overhead": full_size_overhead,
            },
            summary={"wall_s": durations},
        ).write(manifest_path)
    return reports


def combined_report(
    reports: dict[str, str],
    scale: str,
    expected: "tuple[str, ...] | list[str] | None" = None,
    failures: "Mapping[str, str] | None" = None,
) -> str:
    """Assemble individual reports into one document.

    Tolerates missing and failed cells: an experiment named in
    ``expected`` (or in ``failures``) that has no report renders as a
    ``QUARANTINED`` row carrying its failure reason — the combined
    document always covers the full expected matrix instead of raising
    (or silently shrinking) when a sweep completes with partial
    results.
    """
    header = (
        f"DRAS reproduction — full experiment sweep (scale: {scale})\n"
        + "=" * 64
    )
    failures = dict(failures or {})
    order = list(expected) if expected is not None else list(reports)
    for exp_id in reports:
        if exp_id not in order:
            order.append(exp_id)
    for exp_id in failures:
        if exp_id not in order:
            order.append(exp_id)
    blocks = [header]
    quarantined = 0
    for exp_id in order:
        if exp_id in reports:
            blocks.append(
                f"\n{'-' * 64}\n[{exp_id}]\n{'-' * 64}\n{reports[exp_id]}")
        else:
            reason = failures.get(exp_id, "no result recorded")
            quarantined += 1
            blocks.append(
                f"\n{'-' * 64}\n[{exp_id}] QUARANTINED — {reason}\n"
                f"{'-' * 64}\n(cell failed all attempts; "
                "re-run with --resume to retry it)")
    if quarantined:
        blocks.append(
            f"\n{'=' * 64}\n{quarantined} of {len(order)} experiment(s) "
            "quarantined; the report above is partial.")
    return "\n".join(blocks)


# -- parallel-sweep integration (repro.experiments.pool) -----------------------

#: experiments excluded from parallel sweeps by default: the overhead
#: study reports measured wall times, which would break the sweep's
#: byte-identical-rollup contract (opt in with params={"only": [...]})
NONDETERMINISTIC_EXPERIMENTS: tuple[str, ...] = ("overhead",)


def sweep_cells(spec: "SweepSpec") -> list[dict[str, Any]]:
    """Expand an experiments :class:`~repro.experiments.pool.SweepSpec`.

    One cell per experiment id.  ``spec.params["only"]`` selects a
    subset (and may opt nondeterministic experiments back in); the
    default is every experiment except
    :data:`NONDETERMINISTIC_EXPERIMENTS`.
    """
    only = spec.params.get("only")
    if only is not None:
        known = {s.exp_id for s in SPECS}
        unknown = set(only) - known
        if unknown:
            raise ValueError(f"unknown experiment ids: {sorted(unknown)}")
        ids = [s.exp_id for s in SPECS if s.exp_id in set(only)]
    else:
        ids = [s.exp_id for s in SPECS
               if s.exp_id not in NONDETERMINISTIC_EXPERIMENTS]
    return [{"exp": exp_id} for exp_id in ids]


def run_sweep_cell(spec: "SweepSpec", cell: Mapping[str, Any],
                   derived_seed: int, attempt: int) -> dict[str, Any]:
    """Run one experiment cell for the pool orchestrator.

    Experiments are seeded from the sweep-level seed (their identity is
    the paper's figure/table matrix at one seed, matching the serial
    ``reproduce all`` path), not the per-cell ``derived_seed``.
    """
    del derived_seed, attempt  # deterministic cell; see docstring
    exp_id = str(cell["exp"])
    report = run_one(
        exp_id, spec.scale, seed=spec.seed,
        full_size_overhead=bool(spec.params.get("full_size_overhead", True)),
    )
    return {"exp": exp_id, "report": report}


def reports_from_rollup(
    rollup: Mapping[str, Any],
) -> "tuple[dict[str, str], dict[str, str]]":
    """Split a merged pool rollup into (reports, failure reasons).

    Feed both into :func:`combined_report` together with the expected
    id list to render the full matrix with quarantined rows.
    """
    reports: dict[str, str] = {}
    for record in rollup.get("cells", ()):
        summary = record.get("summary") or {}
        if "exp" in summary and "report" in summary:
            reports[str(summary["exp"])] = str(summary["report"])
    failures: dict[str, str] = {}
    for record in rollup.get("quarantined", ()):
        exp_id = (record.get("cell") or {}).get("exp")
        if exp_id is not None:
            failures[str(exp_id)] = str(
                record.get("error_type", "unknown failure"))
    order = [s.exp_id for s in SPECS]
    reports = {k: reports[k] for k in order if k in reports}
    return reports, failures
