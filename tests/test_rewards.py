"""Unit tests for the reward functions (Eq. 1 / Eq. 2)."""

import pytest

from repro.core.rewards import (
    CapabilityReward,
    CapacityReward,
    job_value,
    make_reward,
)
from repro.sim.cluster import Cluster
from tests.conftest import make_job


class TestCapabilityReward:
    def test_all_terms_known_values(self):
        cluster = Cluster(8)
        cluster.allocate(make_job(size=4, walltime=100.0), now=0.0)
        reward = CapabilityReward(w1=1.0, w2=0.0, w3=0.0)
        selected = [make_job(size=2, submit=0.0)]
        waiting = [make_job(size=1, submit=0.0)]
        # at now=100: selected queued 100, max wait 100 -> term = 1
        assert reward(selected, waiting, cluster, 100.0) == pytest.approx(1.0)

    def test_capability_term(self):
        cluster = Cluster(8)
        reward = CapabilityReward(w1=0.0, w2=1.0, w3=0.0)
        selected = [make_job(size=4), make_job(size=2)]
        assert reward(selected, [], cluster, 0.0) == pytest.approx(3 / 8)

    def test_utilization_term(self):
        cluster = Cluster(8)
        cluster.allocate(make_job(size=6, walltime=10.0), now=0.0)
        reward = CapabilityReward(w1=0.0, w2=0.0, w3=1.0)
        assert reward([], [], cluster, 0.0) == pytest.approx(6 / 8)

    def test_no_selection_only_utilization(self):
        cluster = Cluster(8)
        reward = CapabilityReward()
        assert reward([], [make_job()], cluster, 0.0) == 0.0

    def test_started_job_uses_actual_wait(self):
        from repro.sim.job import ExecMode, JobState

        cluster = Cluster(8)
        job = make_job(size=1, submit=0.0)
        job.state = JobState.WAITING
        job.mark_started(60.0, ExecMode.READY)
        reward = CapabilityReward(w1=1.0, w2=0.0, w3=0.0)
        # selected job's wait frozen at 60 even though now=120
        value = reward([job], [make_job(submit=0.0)], cluster, 120.0)
        assert value == pytest.approx(60.0 / 120.0)

    def test_selecting_starved_job_raises_reward(self):
        cluster = Cluster(8)
        reward = CapabilityReward(w1=1.0, w2=0.0, w3=0.0)
        old = make_job(submit=0.0)
        fresh = make_job(submit=90.0)
        waiting = [make_job(submit=0.0)]
        assert reward([old], waiting, cluster, 100.0) > reward(
            [fresh], waiting, cluster, 100.0
        )


class TestCapacityReward:
    def test_empty_queue(self):
        cluster = Cluster(8)
        assert CapacityReward()([], [], cluster, 0.0) == 0.0

    def test_short_jobs_penalized_more(self):
        cluster = Cluster(8)
        reward = CapacityReward()
        short_queue = [make_job(walltime=10.0)]
        long_queue = [make_job(walltime=10000.0)]
        assert reward([], short_queue, cluster, 0.0) < reward(
            [], long_queue, cluster, 0.0
        )

    def test_reward_always_nonpositive(self):
        cluster = Cluster(8)
        reward = CapacityReward()
        waiting = [make_job(walltime=w) for w in (10.0, 100.0, 1000.0)]
        assert reward([], waiting, cluster, 0.0) < 0

    def test_min_walltime_guard(self):
        cluster = Cluster(8)
        reward = CapacityReward(min_walltime=60.0)
        queue = [make_job(walltime=1.0)]
        assert reward([], queue, cluster, 0.0) == pytest.approx(-1 / 60.0)

    def test_draining_short_jobs_improves_reward(self):
        cluster = Cluster(8)
        reward = CapacityReward()
        short, long = make_job(walltime=10.0), make_job(walltime=10000.0)
        with_both = reward([], [short, long], cluster, 0.0)
        after_short_started = reward([short], [long], cluster, 0.0)
        assert after_short_started > with_both


class TestFactory:
    def test_make_reward(self):
        assert isinstance(make_reward("capability"), CapabilityReward)
        assert isinstance(make_reward("capacity"), CapacityReward)

    def test_kwargs_forwarded(self):
        reward = make_reward("capability", w1=0.5, w2=0.25, w3=0.25)
        assert reward.w1 == 0.5

    def test_unknown_objective(self):
        with pytest.raises(ValueError, match="unknown objective"):
            make_reward("fairness")


class TestJobValue:
    def test_capability_values(self):
        cluster = Cluster(8)
        waiting = [make_job(submit=0.0), make_job(submit=50.0)]
        old_large = make_job(size=8, submit=0.0)
        new_small = make_job(size=1, submit=99.0)
        now = 100.0
        assert job_value(old_large, "capability", waiting, cluster, now) > job_value(
            new_small, "capability", waiting, cluster, now
        )

    def test_capacity_prefers_short(self):
        cluster = Cluster(8)
        short = make_job(walltime=10.0)
        long = make_job(walltime=1000.0)
        assert job_value(short, "capacity", [], cluster, 0.0) > job_value(
            long, "capacity", [], cluster, 0.0
        )

    def test_unknown_objective(self):
        with pytest.raises(ValueError):
            job_value(make_job(), "nope", [], Cluster(8), 0.0)
