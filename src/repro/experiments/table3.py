"""Table III — DRAS network configurations and parameter counts.

This experiment is an exact reproduction: the layer dimensions come
from :func:`repro.core.config.table3_configs` and the trainable
parameter counts are computed both analytically
(:attr:`NetworkDims.param_count`) and by actually instantiating the
networks and counting their parameters.  Three of the four paper cells
match exactly; the Cori-DQL cell of the paper is internally
inconsistent (see DESIGN.md §4), and both numbers are reported.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.tables import format_table
from repro.core.config import NetworkDims, table3_configs
from repro.nn.network import build_dras_network, count_parameters

PAPER_PARAM_COUNTS = {
    "theta-pg": 21_890_053,
    "theta-dql": 21_449_004,
    "cori-pg": 161_960_053,
    "cori-dql": 161_764_004,  # inconsistent in the paper; ours: 160,784,004
}


@dataclass(frozen=True)
class NetworkReport:
    name: str
    dims: NetworkDims
    analytic_params: int
    instantiated_params: int
    paper_params: int

    @property
    def matches_paper(self) -> bool:
        return self.analytic_params == self.paper_params


def run(instantiate: bool = False) -> list[NetworkReport]:
    """Build the Table III rows.

    ``instantiate=True`` additionally materializes each network and
    counts its parameters directly; the Cori networks hold ~160M
    float64 weights (~1.3 GB each), so the default trusts the analytic
    count, which the test suite separately verifies to equal the
    instantiated count across architectures.
    """
    rows = []
    rng = np.random.default_rng(0)
    for name, dims in table3_configs().items():
        analytic = dims.param_count
        if instantiate:
            net = build_dras_network(
                dims.rows, dims.hidden1, dims.hidden2, dims.outputs, rng=rng
            )
            instantiated = count_parameters(net)
        else:
            instantiated = analytic
        rows.append(
            NetworkReport(
                name=name,
                dims=dims,
                analytic_params=analytic,
                instantiated_params=instantiated,
                paper_params=PAPER_PARAM_COUNTS[name],
            )
        )
    return rows


def report(rows: list[NetworkReport]) -> str:
    table_rows = []
    for r in rows:
        table_rows.append(
            [
                r.name,
                f"[{r.dims.rows}, 2]",
                r.dims.rows,
                r.dims.hidden1,
                r.dims.hidden2,
                r.dims.outputs,
                f"{r.analytic_params:,}",
                f"{r.paper_params:,}",
                "exact" if r.matches_paper else "paper-inconsistent",
            ]
        )
    return format_table(
        [
            "network",
            "input",
            "conv",
            "fc1",
            "fc2",
            "output",
            "ours",
            "paper",
            "match",
        ],
        table_rows,
        title="Table III: DRAS network configurations for Theta and Cori",
    )
