"""Integration tests for the simulation engine with hand-crafted scenarios."""

import pytest

from repro.schedulers.fcfs import FCFSEasy
from repro.sim.cluster import Cluster
from repro.sim.engine import Engine, SimulationError, run_simulation
from repro.sim.job import ExecMode, Job, JobState
from tests.conftest import make_job


def run_fcfs(num_nodes: int, jobs: list[Job], **kwargs):
    return run_simulation(num_nodes, FCFSEasy(), jobs, **kwargs)


class TestBasicExecution:
    def test_single_job(self):
        job = make_job(size=2, walltime=100.0, submit=5.0)
        result = run_fcfs(4, [job])
        assert job.state is JobState.FINISHED
        assert job.start_time == 5.0
        assert job.end_time == 105.0
        assert job.mode is ExecMode.READY
        assert result.makespan == 105.0

    def test_jobs_run_concurrently_when_fitting(self):
        a = make_job(size=2, walltime=100.0, submit=0.0)
        b = make_job(size=2, walltime=100.0, submit=0.0)
        run_fcfs(4, [a, b])
        assert a.start_time == 0.0 and b.start_time == 0.0

    def test_job_queues_when_full(self):
        a = make_job(size=4, walltime=100.0, submit=0.0)
        b = make_job(size=4, walltime=50.0, submit=1.0)
        run_fcfs(4, [a, b])
        assert b.start_time == 100.0  # waits for a to finish

    def test_early_finish_frees_nodes_sooner(self):
        a = make_job(size=4, walltime=100.0, runtime=30.0, submit=0.0)
        b = make_job(size=4, walltime=50.0, submit=1.0)
        run_fcfs(4, [a, b])
        assert b.start_time == 30.0

    def test_oversized_job_rejected_at_construction(self):
        job = make_job(size=10)
        with pytest.raises(ValueError, match="never fit"):
            Engine(Cluster(4), FCFSEasy(), [job])

    def test_duplicate_ids_rejected(self):
        a = make_job(job_id=5)
        b = make_job(job_id=5)
        with pytest.raises(ValueError, match="duplicate"):
            Engine(Cluster(4), FCFSEasy(), [a, b])

    def test_non_pending_job_rejected(self):
        job = make_job()
        job.state = JobState.WAITING
        with pytest.raises(ValueError, match="PENDING"):
            Engine(Cluster(4), FCFSEasy(), [job])

    def test_empty_jobset(self):
        result = run_fcfs(4, [])
        assert result.makespan == 0.0
        assert result.jobs == []


class TestModes:
    def test_reserved_mode_attribution(self):
        # a fills the system; big cannot fit -> reserved; starts later
        a = make_job(size=4, walltime=100.0, submit=0.0)
        big = make_job(size=4, walltime=50.0, submit=1.0)
        run_fcfs(4, [a, big])
        assert big.mode is ExecMode.RESERVED
        assert big.ever_reserved

    def test_backfilled_mode_attribution(self):
        # blocker holds 3/4 nodes until 100; big (4) reserves; tiny (1 node,
        # 50 s) fits the hole before the shadow time
        blocker = make_job(size=3, walltime=100.0, submit=0.0)
        big = make_job(size=4, walltime=10.0, submit=1.0)
        tiny = make_job(size=1, walltime=50.0, submit=2.0)
        run_fcfs(4, [blocker, big, tiny])
        assert tiny.mode is ExecMode.BACKFILLED
        assert tiny.start_time == 2.0
        assert big.mode is ExecMode.RESERVED
        assert big.start_time == 100.0

    def test_backfill_never_delays_reservation(self):
        blocker = make_job(size=3, walltime=100.0, submit=0.0)
        big = make_job(size=4, walltime=10.0, submit=1.0)
        long_narrow = make_job(size=1, walltime=500.0, submit=2.0)
        run_fcfs(4, [blocker, big, long_narrow])
        # long_narrow (1 node, 500 s) would delay the size-4 reservation at
        # t=100 and there are no extra nodes -> it must wait for big
        assert big.start_time == 100.0
        assert long_narrow.start_time >= 110.0


class TestDependencies:
    def test_dependency_holds_child(self):
        parent = make_job(size=1, walltime=100.0, submit=0.0, job_id=1)
        child = make_job(size=1, walltime=10.0, submit=0.0, deps=(1,), job_id=2)
        run_fcfs(4, [parent, child])
        assert child.start_time == pytest.approx(100.0)

    def test_dependency_chain(self):
        a = make_job(size=1, walltime=10.0, submit=0.0, job_id=1)
        b = make_job(size=1, walltime=10.0, submit=0.0, deps=(1,), job_id=2)
        c = make_job(size=1, walltime=10.0, submit=0.0, deps=(2,), job_id=3)
        run_fcfs(4, [a, b, c])
        assert b.start_time == pytest.approx(10.0)
        assert c.start_time == pytest.approx(20.0)


class TestEngineControls:
    def test_max_time_cuts_run(self):
        a = make_job(size=1, walltime=10.0, submit=0.0)
        late = make_job(size=1, walltime=10.0, submit=1000.0)
        result = run_fcfs(4, [a, late], max_time=100.0)
        assert a.state is JobState.FINISHED
        assert late.state is JobState.PENDING
        assert result.makespan <= 100.0

    def test_observer_callbacks_fire(self):
        events = []

        class Spy:
            def on_start(self, job, now):
                events.append(("start", job.job_id, now))

            def on_finish(self, job, now):
                events.append(("finish", job.job_id, now))

            def on_instance(self, view, started):
                events.append(("instance", len(started)))

        job = make_job(size=1, walltime=10.0, job_id=9)
        run_simulation(4, FCFSEasy(), [job], observers=[Spy()])
        assert ("start", 9, 0.0) in events
        assert ("finish", 9, 10.0) in events
        assert any(e[0] == "instance" for e in events)

    def test_num_instances_counted(self):
        jobs = [make_job(size=1, walltime=10.0, submit=float(i)) for i in range(3)]
        result = run_fcfs(4, jobs)
        # 3 arrivals + 3 completions at distinct times = 6 instances
        assert result.num_instances == 6

    def test_stalled_policy_raises(self):
        class DoNothing:
            name = "noop"

            def schedule(self, view):
                pass

        job = make_job(size=1, walltime=10.0)
        with pytest.raises(SimulationError, match="stalled"):
            run_simulation(4, DoNothing(), [job])

    def test_action_recording(self):
        job = make_job(size=1, walltime=10.0)
        result = run_fcfs(4, [job], record_actions=True)
        assert len(result.actions) == 1
        assert result.actions[0].job_id == job.job_id


class TestViewValidation:
    def test_start_oversized_raises(self):
        class BadPolicy:
            name = "bad"

            def schedule(self, view):
                for job in view.waiting():
                    view.start(job)  # ignores capacity

        a = make_job(size=3, walltime=100.0, submit=0.0)
        b = make_job(size=3, walltime=100.0, submit=0.0)
        with pytest.raises(SimulationError, match="does not fit"):
            run_simulation(4, BadPolicy(), [a, b])

    def test_double_reservation_raises(self):
        class DoubleReserve:
            name = "bad"

            def schedule(self, view):
                waiting = view.waiting()
                blockers = [j for j in waiting if j.size > view.free_nodes]
                for job in blockers[:2]:
                    view.reserve(job)

        filler = make_job(size=4, walltime=100.0, submit=0.0)
        b1 = make_job(size=3, walltime=10.0, submit=1.0)
        b2 = make_job(size=3, walltime=10.0, submit=1.0)

        class FillThenBad(DoubleReserve):
            def schedule(self, view):
                for job in list(view.waiting()):
                    if job.size <= view.free_nodes:
                        view.start(job)
                super().schedule(view)

        with pytest.raises(SimulationError, match="already exists"):
            run_simulation(4, FillThenBad(), [filler, b1, b2])

    def test_reserve_fitting_job_raises(self):
        class BadReserve:
            name = "bad"

            def schedule(self, view):
                waiting = view.waiting()
                if waiting:
                    view.reserve(waiting[0])

        job = make_job(size=1, walltime=10.0)
        with pytest.raises(SimulationError, match="fits right now"):
            run_simulation(4, BadReserve(), [job])

    def test_elapsed_property(self):
        job = make_job(size=1, walltime=10.0, submit=5.0)
        result = run_fcfs(4, [job])
        assert result.elapsed == pytest.approx(10.0)
        assert result.first_submit == 5.0
