"""Benchmark: regenerate Fig 9 (adaptation to workload surges)."""

import numpy as np
from conftest import SCALE, save_report

from repro.experiments import fig9


def test_fig9(benchmark, report_dir):
    result = benchmark.pedantic(lambda: fig9.run(SCALE), rounds=1, iterations=1)
    text = fig9.report(result)
    save_report(report_dir, "fig9", text)

    profile = fig9.SURGE_PROFILE
    assert len(result.weeks) >= len(profile) - 1
    # top panel: surge weeks really carry more submitted core hours
    ch = np.array(result.core_hours[: len(profile)])
    surge_weeks = [i for i, lf in enumerate(profile[: len(ch)]) if lf >= 1.5]
    normal_weeks = [i for i, lf in enumerate(profile[: len(ch)]) if lf <= 1.1]
    assert ch[surge_weeks].mean() > ch[normal_weeks].mean()

    # bottom panel: the online-learning DRAS agents handle the surges
    # at least as well as the static methods overall
    waits = {m: np.array(s) for m, s in result.weekly_wait_h.items()}
    static_avg = min(waits["FCFS"].mean(), waits["Optimization"].mean())
    dras_avg = min(waits["DRAS-PG"].mean(), waits["DRAS-DQL"].mean())
    assert dras_avg < 1.25 * static_avg
