"""Benchmark: §V-E runtime overhead on the full-size Theta networks.

The paper reports <1 s per DRAS-PG update and <2 s per DRAS-DQL update
on a quad-core PC, against a 15-30 s real-time scheduling budget.  Here
pytest-benchmark times the actual forward pass (one decision) and the
actual forward+backward+Adam step (one parameter update) of the
21.9M/21.4M-parameter Theta networks.
"""

import numpy as np
import pytest
from conftest import save_report

from repro.core.config import DRASConfig
from repro.experiments import overhead
from repro.nn.losses import mse_loss, policy_gradient_loss
from repro.nn.network import build_dras_network
from repro.nn.optim import Adam


@pytest.fixture(scope="module")
def theta_pg():
    cfg = DRASConfig.theta()
    dims = cfg.pg_dims
    rng = np.random.default_rng(0)
    net = build_dras_network(dims.rows, dims.hidden1, dims.hidden2,
                             dims.outputs, rng=rng)
    return cfg, dims, net, Adam(net.parameters(), lr=cfg.learning_rate)


@pytest.fixture(scope="module")
def theta_dql():
    cfg = DRASConfig.theta()
    dims = cfg.dql_dims
    rng = np.random.default_rng(0)
    net = build_dras_network(dims.rows, dims.hidden1, dims.hidden2,
                             dims.outputs, rng=rng)
    return cfg, dims, net, Adam(net.parameters(), lr=cfg.learning_rate)


def test_pg_decision_latency(benchmark, theta_pg):
    _, dims, net, _ = theta_pg
    x = np.random.default_rng(1).random((1, dims.rows, 2))
    benchmark(net.forward, x)
    # one decision must fit the 15 s production budget with huge margin
    assert benchmark.stats["mean"] < overhead.REALTIME_BUDGET_S


def test_pg_update_latency(benchmark, theta_pg):
    cfg, dims, net, opt = theta_pg
    rng = np.random.default_rng(1)
    x = rng.random((10, dims.rows, 2))
    masks = np.ones((10, dims.outputs), dtype=bool)
    actions = rng.integers(dims.outputs, size=10)
    advantages = rng.normal(size=10)

    def update():
        net.zero_grad()
        logits = net.forward(x)
        _, grad = policy_gradient_loss(logits, masks, actions, advantages)
        net.backward(grad)
        opt.step()

    benchmark(update)
    # paper: < 1 s per DRAS-PG parameter update on a PC
    assert benchmark.stats["mean"] < 2.0


def test_dql_decision_latency(benchmark, theta_dql):
    cfg, dims, net, _ = theta_dql
    # one decision scores all W=50 window jobs
    x = np.random.default_rng(1).random((cfg.window, dims.rows, 2))
    benchmark(net.forward, x)
    assert benchmark.stats["mean"] < overhead.REALTIME_BUDGET_S


def test_dql_update_latency(benchmark, theta_dql):
    cfg, dims, net, opt = theta_dql
    rng = np.random.default_rng(1)
    x = rng.random((10, dims.rows, 2))
    targets = rng.normal(size=(10, 1))

    def update():
        net.zero_grad()
        q = net.forward(x)
        _, grad = mse_loss(q, targets)
        net.backward(grad)
        opt.step()

    benchmark(update)
    # paper: < 2 s per DRAS-DQL parameter update on a PC
    assert benchmark.stats["mean"] < 4.0


def test_overhead_report(benchmark, report_dir):
    results = benchmark.pedantic(
        lambda: overhead.run(full_size=True, repeats=1), rounds=1, iterations=1
    )
    save_report(report_dir, "overhead", overhead.report(results))
    for r in results:
        assert r.within_budget
