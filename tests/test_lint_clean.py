"""Tier-1 gate: the shipped source tree must lint clean.

Any new global-RNG usage, wall-clock read, mutable default, float
timestamp equality or swallowed exception introduced under ``src/repro``
fails this test, enforcing the zero-violation baseline established by
the `repro check` tooling PR.  Suppress intentional exceptions in place
with ``# repro: noqa[rule]`` plus a justification comment.
"""

from pathlib import Path

from repro.check import analyze_project, lint_paths

SRC = Path(__file__).resolve().parent.parent / "src" / "repro"


def test_source_tree_exists():
    assert SRC.is_dir(), f"expected source tree at {SRC}"


def test_source_tree_lints_clean():
    violations = lint_paths([SRC])
    report = "\n".join(v.format() for v in violations)
    assert not violations, f"determinism lint violations:\n{report}"


def test_source_tree_is_strict_clean():
    """The whole-program rules (RPR2xx/3xx/4xx) must also report zero."""
    violations = analyze_project(SRC)
    report = "\n".join(v.format() for v in violations)
    assert not violations, f"whole-program analysis violations:\n{report}"
