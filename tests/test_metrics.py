"""Unit tests for metrics (RunMetrics, ModeBreakdown, series, recorder)."""

import numpy as np
import pytest

from repro.schedulers.fcfs import FCFSEasy
from repro.sim.engine import run_simulation
from repro.sim.job import ExecMode, JobState
from repro.sim.metrics import (
    MetricsRecorder,
    ModeBreakdown,
    RunMetrics,
    wait_by_size_category,
    weekly_series,
)
from tests.conftest import make_job


def _run(jobs, nodes=4, observers=()):
    return run_simulation(nodes, FCFSEasy(), jobs, observers=observers)


class TestRunMetrics:
    def test_known_values(self):
        # two jobs in sequence on a full cluster
        a = make_job(size=4, walltime=100.0, submit=0.0)
        b = make_job(size=4, walltime=100.0, submit=0.0)
        result = _run([a, b])
        m = RunMetrics.from_result(result)
        assert m.num_jobs == 2
        assert m.avg_wait == pytest.approx(50.0)   # 0 and 100
        assert m.max_wait == pytest.approx(100.0)
        assert m.avg_response == pytest.approx(150.0)
        assert m.avg_slowdown == pytest.approx(1.5)
        # 2 * 4 * 100 node-seconds over 4 nodes * 200 s
        assert m.utilization == pytest.approx(1.0)
        assert m.total_core_hours == pytest.approx(800.0 / 3600.0)

    def test_empty_result(self):
        result = _run([])
        m = RunMetrics.from_result(result)
        assert m.num_jobs == 0
        assert m.avg_wait == 0.0
        assert m.utilization == 0.0

    def test_slowdown_bound_passthrough(self):
        a = make_job(size=4, walltime=1.0, submit=0.0)
        b = make_job(size=4, walltime=1.0, submit=0.0)
        result = _run([a, b])
        plain = RunMetrics.from_result(result)
        bounded = RunMetrics.from_result(result, slowdown_bound=10.0)
        assert bounded.avg_slowdown < plain.avg_slowdown

    def test_as_dict_keys(self):
        m = RunMetrics.from_result(_run([make_job()]))
        d = m.as_dict()
        assert set(d) == {
            "num_jobs", "avg_wait", "max_wait", "p99_wait", "avg_response",
            "avg_slowdown", "utilization", "makespan", "total_core_hours",
        }


class TestModeBreakdown:
    def test_shares_sum_to_one(self):
        blocker = make_job(size=3, walltime=100.0, submit=0.0)
        big = make_job(size=4, walltime=10.0, submit=1.0)
        tiny = make_job(size=1, walltime=50.0, submit=2.0)
        result = _run([blocker, big, tiny])
        mb = ModeBreakdown.from_jobs(result.jobs)
        assert sum(mb.job_share.values()) == pytest.approx(1.0)
        assert sum(mb.core_hour_share.values()) == pytest.approx(1.0)
        assert mb.job_share[ExecMode.READY] == pytest.approx(1 / 3)
        assert mb.job_share[ExecMode.RESERVED] == pytest.approx(1 / 3)
        assert mb.job_share[ExecMode.BACKFILLED] == pytest.approx(1 / 3)

    def test_empty(self):
        mb = ModeBreakdown.from_jobs([])
        assert all(v == 0.0 for v in mb.job_share.values())


class TestGroupings:
    def test_wait_by_size_category(self):
        jobs = []
        for size, wait in ((1, 10.0), (2, 20.0), (5, 30.0)):
            j = make_job(size=size, walltime=50.0, submit=0.0)
            j.state = JobState.WAITING
            j.mark_started(wait, ExecMode.READY)
            j.mark_finished(wait + 50.0)
            jobs.append(j)
        groups = wait_by_size_category(jobs, bounds=[2, 4])
        assert groups["1-2"] == [10.0, 20.0]
        assert groups[">=5"] == [30.0]

    def test_unfinished_jobs_skipped(self):
        job = make_job(size=1)
        groups = wait_by_size_category([job], bounds=[2])
        assert all(not v for v in groups.values())

    def test_weekly_series(self):
        week = 7 * 24 * 3600.0
        jobs = []
        for wk, wait in ((0, 100.0), (0, 300.0), (2, 60.0)):
            j = make_job(size=2, walltime=3600.0, submit=wk * week)
            j.state = JobState.WAITING
            j.mark_started(wk * week + wait, ExecMode.READY)
            j.mark_finished(wk * week + wait + 3600.0)
            jobs.append(j)
        series = weekly_series(jobs)
        assert list(series["week"]) == [0, 1, 2]
        assert series["avg_wait"][0] == pytest.approx(200.0)
        assert series["avg_wait"][1] == 0.0  # empty week
        assert series["avg_wait"][2] == pytest.approx(60.0)
        assert series["core_hours"][0] == pytest.approx(4.0)

    def test_weekly_series_empty(self):
        series = weekly_series([])
        assert series["week"].size == 0


class TestMetricsRecorder:
    def test_occupancy_integral_matches_job_work(self):
        recorder = MetricsRecorder(num_nodes=4)
        a = make_job(size=2, walltime=100.0, submit=0.0)
        b = make_job(size=2, walltime=50.0, submit=10.0)
        result = _run([a, b], observers=[recorder])
        expected = a.node_seconds + b.node_seconds
        assert recorder.occupancy_node_seconds() == pytest.approx(expected)
        util = recorder.utilization(result.elapsed)
        assert 0.0 < util <= 1.0

    def test_instance_utilization_samples(self):
        recorder = MetricsRecorder(num_nodes=4)
        _run([make_job(size=4, walltime=10.0)], observers=[recorder])
        assert recorder.instance_utilizations
        assert all(0.0 <= u <= 1.0 for u in recorder.instance_utilizations)

    def test_zero_elapsed(self):
        assert MetricsRecorder(4).utilization(0.0) == 0.0
