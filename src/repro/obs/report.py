"""Self-contained HTML run reports (inline SVG, zero dependencies).

One call stitches every observability artifact a run leaves behind —
manifest, summary metrics, training telemetry, bench baselines and
trace analytics — into a single HTML file with no external assets:
styles are an inline ``<style>`` block, charts are inline SVG, and the
file opens offline in any browser.  ``python -m repro report`` is the
CLI front-end; ``--report`` on ``reproduce``/``simulate``/``train``/
``bench`` emits one automatically.

Chart discipline (kept deliberately boring so the data is the only
loud thing on the page): 2px lines, thin bars with rounded data-ends
growing from a single baseline, hairline solid gridlines, a legend
whenever two series share a plot, native SVG ``<title>`` tooltips, and
a table-view twin under every chart so no value is gated behind color
or hover.  Series colors come from a CVD-validated palette with
light/dark variants selected via ``prefers-color-scheme``.

Everything here is pure string assembly over plain dicts/lists — no
simulator imports, so reports can be rebuilt from artifacts alone.
"""

from __future__ import annotations

import math
from html import escape
from pathlib import Path
from typing import Any, Callable, Iterable, Mapping, Sequence

from repro.obs.analyze import Histogram, TraceSummary

#: a series is ``(label, [(x, y), ...])``; non-finite y's break the line
Series = tuple[str, Sequence[tuple[float, float]]]

# CVD-validated categorical slots (light, dark) — assigned in fixed
# order, never cycled; charts here use at most three series.
_SLOT_VARS = ("--series-1", "--series-2", "--series-3")

_CSS = """
:root { color-scheme: light dark; }
body {
  margin: 0; padding: 24px;
  background: var(--plane); color: var(--ink);
  font: 14px/1.5 system-ui, -apple-system, "Segoe UI", sans-serif;
  --plane: #f9f9f7; --surface: #fcfcfb; --ink: #0b0b0b;
  --ink-2: #52514e; --muted: #898781; --grid: #e1e0d9;
  --axis: #c3c2b7; --border: rgba(11,11,11,0.10);
  --series-1: #2a78d6; --series-2: #eb6834; --series-3: #1baf7a;
}
@media (prefers-color-scheme: dark) {
  body {
    --plane: #0d0d0d; --surface: #1a1a19; --ink: #ffffff;
    --ink-2: #c3c2b7; --muted: #898781; --grid: #2c2c2a;
    --axis: #383835; --border: rgba(255,255,255,0.10);
    --series-1: #3987e5; --series-2: #d95926; --series-3: #199e70;
  }
}
main { max-width: 1080px; margin: 0 auto; }
h1 { font-size: 22px; margin: 0 0 2px; }
h2 { font-size: 15px; margin: 32px 0 12px; color: var(--ink); }
.sub { color: var(--ink-2); margin: 0 0 20px; }
.grid { display: grid; gap: 16px;
        grid-template-columns: repeat(auto-fit, minmax(320px, 1fr)); }
.card { background: var(--surface); border: 1px solid var(--border);
        border-radius: 8px; padding: 16px; min-width: 0; }
.card h3 { font-size: 13px; font-weight: 600; margin: 0 0 8px;
           color: var(--ink-2); }
.tiles { display: grid; gap: 16px;
         grid-template-columns: repeat(auto-fit, minmax(150px, 1fr)); }
.tile .label { font-size: 12px; color: var(--ink-2); }
.tile .value { font-size: 26px; font-weight: 600; margin-top: 2px; }
.legend { display: flex; gap: 16px; flex-wrap: wrap; margin: 8px 0 0;
          font-size: 12px; color: var(--ink-2); }
.legend .dot { display: inline-block; width: 8px; height: 8px;
               border-radius: 50%; margin-right: 5px; }
svg { display: block; width: 100%; height: auto; }
svg text { font: 11px system-ui, sans-serif;
           font-variant-numeric: tabular-nums; }
table { border-collapse: collapse; width: 100%; font-size: 12px;
        font-variant-numeric: tabular-nums; }
th, td { text-align: right; padding: 3px 8px;
         border-bottom: 1px solid var(--grid); }
th:first-child, td:first-child { text-align: left; }
th { color: var(--ink-2); font-weight: 600; }
details { margin-top: 8px; }
summary { cursor: pointer; font-size: 12px; color: var(--muted); }
.anomaly { color: #d03b3b; font-weight: 600; }
.mono { font-family: ui-monospace, monospace; font-size: 12px; }
"""

# -- small helpers -------------------------------------------------------------

def _fmt(value: Any) -> str:
    """Compact human formatting for table cells and labels."""
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        return escape(str(value))
    if isinstance(value, int):
        return f"{value:,}"
    if not math.isfinite(value):
        return str(value)
    if value != 0 and abs(value) < 1e-3:
        return f"{value:.2e}"
    if abs(value) >= 1000:
        return f"{value:,.0f}"
    return f"{value:.4g}"


def _nice_ticks(lo: float, hi: float, n: int = 5) -> list[float]:
    """Round tick positions covering ``[lo, hi]`` (1-2-5 stepping)."""
    if not (math.isfinite(lo) and math.isfinite(hi)) or hi <= lo:
        return [lo]
    raw = (hi - lo) / max(1, n)
    mag = 10.0 ** math.floor(math.log10(raw))
    for mult in (1.0, 2.0, 5.0, 10.0):
        if raw <= mult * mag:
            step = mult * mag
            break
    first = math.ceil(lo / step) * step
    ticks = []
    t = first
    while t <= hi + 1e-9 * step:
        ticks.append(0.0 if abs(t) < step * 1e-9 else t)
        t += step
    return ticks or [lo]


# plot geometry shared by every chart (px)
_W, _H = 640, 240
_ML, _MR, _MT, _MB = 56, 14, 10, 26


def _scale(lo: float, hi: float, a: float, b: float) -> Callable[[float], float]:
    span = hi - lo
    if span <= 0:
        span = 1.0
    return lambda v: a + (v - lo) / span * (b - a)


def _frame(
    xticks: Sequence[float], yticks: Sequence[float],
    sx: Callable[[float], float], sy: Callable[[float], float],
    x_fmt: Callable[[float], str], y_fmt: Callable[[float], str],
) -> list[str]:
    """Hairline gridlines, baseline and tick labels (recessive chrome)."""
    parts = []
    for t in yticks:
        y = sy(t)
        parts.append(
            f'<line x1="{_ML}" y1="{y:.1f}" x2="{_W - _MR}" y2="{y:.1f}" '
            'stroke="var(--grid)" stroke-width="1"/>'
        )
        parts.append(
            f'<text x="{_ML - 6}" y="{y + 3.5:.1f}" text-anchor="end" '
            f'fill="var(--muted)">{escape(y_fmt(t))}</text>'
        )
    base = _H - _MB
    parts.append(
        f'<line x1="{_ML}" y1="{base}" x2="{_W - _MR}" y2="{base}" '
        'stroke="var(--axis)" stroke-width="1"/>'
    )
    for t in xticks:
        x = sx(t)
        parts.append(
            f'<text x="{x:.1f}" y="{base + 16}" text-anchor="middle" '
            f'fill="var(--muted)">{escape(x_fmt(t))}</text>'
        )
    return parts


def _finite_points(
    points: Sequence[tuple[float, float]],
) -> list[tuple[float, float]]:
    return [
        (float(x), float(y))
        for x, y in points
        if math.isfinite(float(x)) and math.isfinite(float(y))
    ]


def svg_line_chart(
    series: Sequence[Series],
    x_fmt: Callable[[float], str] | None = None,
    y_fmt: Callable[[float], str] | None = None,
    step: bool = False,
    unit: str = "",
) -> str:
    """A one-axis line (or step) chart over up to three series.

    Non-finite points break the line; series with no finite points are
    dropped.  Each data point carries an oversized transparent hit
    circle with a native ``<title>`` tooltip.  Returns ``""`` when
    nothing is plottable (callers then skip the card entirely).
    """
    x_fmt = x_fmt or _fmt
    y_fmt = y_fmt or _fmt
    plotted = [
        (label, pts)
        for label, pts in ((lbl, _finite_points(p)) for lbl, p in series)
        if pts
    ][: len(_SLOT_VARS)]
    if not plotted:
        return ""
    xs = [x for _, pts in plotted for x, _ in pts]
    ys = [y for _, pts in plotted for _, y in pts]
    x_lo, x_hi = min(xs), max(xs)
    # anchor the y baseline at 0 for non-negative data
    y_lo = 0.0 if min(ys) >= 0 else min(ys)
    y_hi = max(ys)
    if y_hi <= y_lo:
        y_hi = y_lo + 1.0
    yticks = _nice_ticks(y_lo, y_hi, 4)
    y_lo, y_hi = min(y_lo, yticks[0]), max(y_hi, yticks[-1])
    xticks = _nice_ticks(x_lo, x_hi, 6)
    sx = _scale(x_lo, x_hi, _ML, _W - _MR)
    sy = _scale(y_lo, y_hi, _H - _MB, _MT)
    parts = [
        f'<svg viewBox="0 0 {_W} {_H}" role="img" '
        'xmlns="http://www.w3.org/2000/svg">'
    ]
    parts += _frame(xticks, yticks, sx, sy, x_fmt, y_fmt)
    for i, (label, pts) in enumerate(plotted):
        color = f"var({_SLOT_VARS[i]})"
        coords = [(sx(x), sy(y)) for x, y in pts]
        if step and len(coords) > 1:
            d = f"M{coords[0][0]:.1f},{coords[0][1]:.1f}"
            for (x0, y0), (x1, y1) in zip(coords, coords[1:]):
                d += f"H{x1:.1f}V{y1:.1f}"
            parts.append(
                f'<path d="{d}" fill="none" stroke="{color}" '
                'stroke-width="2" stroke-linejoin="round" '
                'stroke-linecap="round"/>'
            )
        elif len(coords) > 1:
            d = " ".join(f"{x:.1f},{y:.1f}" for x, y in coords)
            parts.append(
                f'<polyline points="{d}" fill="none" stroke="{color}" '
                'stroke-width="2" stroke-linejoin="round" '
                'stroke-linecap="round"/>'
            )
        # end marker with a 2px surface ring
        ex, ey = coords[-1]
        parts.append(
            f'<circle cx="{ex:.1f}" cy="{ey:.1f}" r="4" fill="{color}" '
            'stroke="var(--surface)" stroke-width="2"/>'
        )
        hover = coords if len(coords) <= 200 else coords[:: len(coords) // 200 + 1]
        hov_pts = pts if len(coords) <= 200 else pts[:: len(pts) // 200 + 1]
        for (cx, cy), (x, y) in zip(hover, hov_pts):
            tip = f"{label} @ {x_fmt(x)}: {y_fmt(y)}{unit}"
            parts.append(
                f'<circle cx="{cx:.1f}" cy="{cy:.1f}" r="10" '
                f'fill="transparent"><title>{escape(tip)}</title></circle>'
            )
    parts.append("</svg>")
    return "".join(parts)


def svg_histogram(hist: Histogram, x_fmt: Callable[[float], str] | None = None) -> str:
    """Vertical bars for one :class:`~repro.obs.analyze.Histogram`.

    Single-series: bars in slot 1 with rounded data-ends, square at the
    baseline, a 2px surface gap between neighbours.  Bin ranges and
    counts ride native tooltips (and the caller's table twin)."""
    x_fmt = x_fmt or _fmt
    if hist.n == 0 or len(hist.counts) == 0:
        return ""
    n_bins = len(hist.counts)
    top = max(hist.counts)
    yticks = [t for t in _nice_ticks(0, top, 4) if t == int(t)]
    y_hi = max(float(top), yticks[-1] if yticks else 1.0)
    sy = _scale(0.0, y_hi, _H - _MB, _MT)
    slot_w = (_W - _ML - _MR) / n_bins
    bar_w = min(24.0, max(1.0, slot_w - 2.0))
    base = _H - _MB
    parts = [
        f'<svg viewBox="0 0 {_W} {_H}" role="img" '
        'xmlns="http://www.w3.org/2000/svg">'
    ]
    for t in yticks:
        y = sy(t)
        parts.append(
            f'<line x1="{_ML}" y1="{y:.1f}" x2="{_W - _MR}" y2="{y:.1f}" '
            'stroke="var(--grid)" stroke-width="1"/>'
            f'<text x="{_ML - 6}" y="{y + 3.5:.1f}" text-anchor="end" '
            f'fill="var(--muted)">{int(t)}</text>'
        )
    parts.append(
        f'<line x1="{_ML}" y1="{base}" x2="{_W - _MR}" y2="{base}" '
        'stroke="var(--axis)" stroke-width="1"/>'
    )
    for i, count in enumerate(hist.counts):
        x = _ML + i * slot_w + (slot_w - bar_w) / 2
        lo, hi = hist.edges[i], hist.edges[i + 1]
        tip = f"{x_fmt(lo)} – {x_fmt(hi)}: {count}"
        if count > 0:
            y = sy(float(count))
            h = base - y
            r = min(4.0, bar_w / 2, h)
            parts.append(
                f'<path d="M{x:.1f},{base:.1f} V{y + r:.1f} '
                f'Q{x:.1f},{y:.1f} {x + r:.1f},{y:.1f} '
                f'H{x + bar_w - r:.1f} '
                f'Q{x + bar_w:.1f},{y:.1f} {x + bar_w:.1f},{y + r:.1f} '
                f'V{base:.1f} Z" fill="var(--series-1)"/>'
            )
        parts.append(
            f'<rect x="{_ML + i * slot_w:.1f}" y="{_MT}" '
            f'width="{slot_w:.1f}" height="{base - _MT}" fill="transparent">'
            f"<title>{escape(tip)}</title></rect>"
        )
    for frac in (0.0, 0.5, 1.0):
        i = frac * n_bins
        x = _ML + i * slot_w
        edge = hist.edges[int(round(i))]
        anchor = "start" if frac == 0.0 else "end" if frac == 1.0 else "middle"
        parts.append(
            f'<text x="{x:.1f}" y="{base + 16}" text-anchor="{anchor}" '
            f'fill="var(--muted)">{escape(x_fmt(edge))}</text>'
        )
    parts.append("</svg>")
    return "".join(parts)


def svg_hbar(rows: Sequence[tuple[str, float]], value_fmt: Callable[[float], str] | None = None) -> str:
    """Horizontal single-series bars (profiler hot paths, bench deltas).

    One row per ``(label, value)``: name in ink on the left, a thin
    rounded-end bar, the value labelled at the tip in a text token."""
    value_fmt = value_fmt or _fmt
    rows = [(label, float(v)) for label, v in rows if math.isfinite(float(v))]
    if not rows:
        return ""
    top = max((v for _, v in rows), default=0.0)
    if top <= 0:
        top = 1.0
    row_h, gap = 24, 8
    label_w, value_w = 180, 70
    height = _MT + len(rows) * (row_h + gap)
    x0 = label_w
    x_max = _W - value_w
    parts = [
        f'<svg viewBox="0 0 {_W} {height}" role="img" '
        'xmlns="http://www.w3.org/2000/svg">'
    ]
    for i, (label, value) in enumerate(rows):
        y = _MT + i * (row_h + gap)
        bar_h = 16.0
        by = y + (row_h - bar_h) / 2
        w = max(0.0, (value / top) * (x_max - x0))
        r = min(4.0, bar_h / 2, w)
        parts.append(
            f'<text x="{x0 - 8}" y="{by + bar_h - 4:.1f}" text-anchor="end" '
            f'fill="var(--ink-2)">{escape(label[:28])}</text>'
        )
        if w > 0:
            parts.append(
                f'<path d="M{x0},{by:.1f} H{x0 + w - r:.1f} '
                f'Q{x0 + w:.1f},{by:.1f} {x0 + w:.1f},{by + r:.1f} '
                f'V{by + bar_h - r:.1f} '
                f'Q{x0 + w:.1f},{by + bar_h:.1f} {x0 + w - r:.1f},{by + bar_h:.1f} '
                f'H{x0} Z" fill="var(--series-1)">'
                f"<title>{escape(f'{label}: {value_fmt(value)}')}</title></path>"
            )
        parts.append(
            f'<text x="{x0 + w + 8:.1f}" y="{by + bar_h - 4:.1f}" '
            f'fill="var(--ink-2)">{escape(value_fmt(value))}</text>'
        )
    parts.append(
        f'<line x1="{x0}" y1="{_MT - 4}" x2="{x0}" '
        f'y2="{height - gap + 4}" stroke="var(--axis)" stroke-width="1"/>'
    )
    parts.append("</svg>")
    return "".join(parts)


# -- HTML assembly -------------------------------------------------------------

def _legend(labels: Sequence[str]) -> str:
    if len(labels) < 2:
        return ""
    items = "".join(
        f'<span><span class="dot" style="background:var({_SLOT_VARS[i]})">'
        f"</span>{escape(label)}</span>"
        for i, label in enumerate(labels[: len(_SLOT_VARS)])
    )
    return f'<div class="legend">{items}</div>'


def _table(headers: Sequence[str], rows: Iterable[Sequence[Any]]) -> str:
    head = "".join(f"<th>{escape(str(h))}</th>" for h in headers)
    body = "".join(
        "<tr>" + "".join(f"<td>{_fmt(c)}</td>" for c in row) + "</tr>"
        for row in rows
    )
    return f"<table><thead><tr>{head}</tr></thead><tbody>{body}</tbody></table>"


def _card(title: str, svg: str, legend: str = "", table: str = "") -> str:
    if not svg and not table:
        return ""
    twin = f"<details><summary>Table view</summary>{table}</details>" \
        if (svg and table) else table
    return (
        f'<div class="card"><h3>{escape(title)}</h3>{svg}{legend}{twin}</div>'
    )


def _tile(label: str, value: Any) -> str:
    return (
        f'<div class="card tile"><div class="label">{escape(label)}</div>'
        f'<div class="value">{_fmt(value)}</div></div>'
    )


def _section(title: str, inner: str) -> str:
    return f"<h2>{escape(title)}</h2>{inner}" if inner else ""


def _seconds_fmt(v: float) -> str:
    if abs(v) >= 3600:
        return f"{v / 3600:.3g}h"
    if abs(v) >= 60:
        return f"{v / 60:.3g}m"
    if abs(v) >= 1:
        return f"{v:.3g}s"
    return f"{1e3 * v:.3g}ms"


def _summary_tiles(
    manifest: Mapping[str, Any] | None, metrics: Mapping[str, Any] | None
) -> str:
    tiles = []
    if manifest:
        for key in ("policy", "seed", "num_nodes"):
            if key in manifest:
                tiles.append(_tile(key.replace("_", " "), manifest[key]))
    if metrics:
        for key, label in (
            ("num_jobs", "jobs finished"),
            ("avg_wait", "avg wait (s)"),
            ("avg_slowdown", "avg slowdown"),
            ("utilization", "utilization"),
            ("makespan", "makespan (s)"),
        ):
            if key in metrics:
                tiles.append(_tile(label, metrics[key]))
    return f'<div class="tiles">{"".join(tiles)}</div>' if tiles else ""


def _telemetry_section(episodes: Sequence[Mapping[str, Any]]) -> str:
    if not episodes:
        return ""

    def pts(key: str) -> list[tuple[float, float]]:
        return [
            (float(r.get("episode", i)), float(r[key]))
            for i, r in enumerate(episodes)
            if isinstance(r.get(key), (int, float))
        ]

    cards = [
        _card(
            "Reward per episode",
            svg_line_chart(
                [("train", pts("train_reward")),
                 ("validation", pts("validation_reward"))]
            ),
            legend=_legend(["train", "validation"]),
            table=_table(
                ["episode", "phase", "train", "validation", "anomalies"],
                [
                    (r.get("episode"), r.get("phase"), r.get("train_reward"),
                     r.get("validation_reward"),
                     ", ".join(r.get("anomalies", [])) or "—")
                    for r in episodes
                ],
            ),
        ),
        _card("Loss", svg_line_chart([("loss", pts("loss"))]),
              table=_table(["episode", "loss"], pts("loss"))),
        _card("Gradient norm",
              svg_line_chart([("grad_norm", pts("grad_norm"))]),
              table=_table(["episode", "grad norm"], pts("grad_norm"))),
        _card("Policy entropy / epsilon",
              svg_line_chart([("entropy", pts("entropy")),
                              ("epsilon", pts("epsilon"))]),
              legend=_legend(
                  [k for k in ("entropy", "epsilon") if pts(k)]),
              table=_table(["episode", "entropy"], pts("entropy"))),
        _card("Cluster utilization per episode",
              svg_line_chart([("utilization", pts("utilization"))]),
              table=_table(["episode", "utilization"], pts("utilization"))),
        _card("Queue depth (max per episode)",
              svg_line_chart([("max depth", pts("queue_depth_max"))],
                             step=True),
              table=_table(["episode", "max depth"],
                           pts("queue_depth_max"))),
    ]
    flagged = [r for r in episodes if r.get("anomalies")]
    banner = ""
    if flagged:
        items = "; ".join(
            f"episode {r.get('episode')}: {', '.join(r['anomalies'])}"
            for r in flagged[:8]
        )
        banner = (
            f'<p class="sub"><span class="anomaly">⚠ '
            f"{len(flagged)} flagged episode(s)</span> — {escape(items)}</p>"
        )
    return banner + f'<div class="grid">{"".join(c for c in cards if c)}</div>'


def _trace_section(summary: TraceSummary) -> str:
    cards = []
    if summary.rollups:
        cards.append(_card(
            "Span time rollup (self seconds)",
            svg_hbar(
                [(r.name, r.self_s) for r in summary.rollups[:8]],
                value_fmt=_seconds_fmt,
            ),
            table=_table(
                ["span", "count", "total s", "self s", "mean ms", "unclosed"],
                [(r.name, r.count, r.total_s, r.self_s, 1e3 * r.mean_s,
                  r.unclosed) for r in summary.rollups],
            ),
        ))
    hist = summary.decision_histogram
    if hist is not None and hist.n:
        cards.append(_card(
            "Scheduler decision latency",
            svg_histogram(hist, x_fmt=_seconds_fmt),
            table=_table(
                ["stat", "value"],
                [("n", hist.n), ("mean", _seconds_fmt(hist.mean)),
                 ("p50", _seconds_fmt(hist.p50)),
                 ("p90", _seconds_fmt(hist.p90)),
                 ("p99", _seconds_fmt(hist.p99)),
                 ("max", _seconds_fmt(hist.max))],
            ),
        ))
    if len(summary.timeline) > 1:
        cards.append(_card(
            "Busy nodes over simulated time",
            svg_line_chart(
                [("busy nodes", summary.timeline)],
                step=True, x_fmt=_seconds_fmt,
            ),
            table=_table(
                ["stat", "value"],
                [("peak busy nodes", summary.peak_busy_nodes),
                 ("occupancy changes", len(summary.timeline))],
            ),
        ))
    meta = _table(
        ["stat", "value"],
        [("records", summary.n_records), ("spans", summary.n_spans),
         ("unclosed spans", summary.n_unclosed),
         ("events", summary.n_events)],
    )
    cards.append(_card("Trace file", "", table=meta))
    return f'<div class="grid">{"".join(cards)}</div>'


def _profile_section(profile: Mapping[str, Any]) -> str:
    flat = profile.get("flat") or []
    rows = [
        (e.get("name", "?"), e.get("calls", 0), e.get("cum_s", 0.0),
         e.get("self_s", 0.0), 1e3 * float(e.get("mean_s", 0.0)))
        for e in flat
        if isinstance(e, Mapping)
    ]
    if not rows:
        return ""
    chart = svg_hbar(
        [(str(name), float(self_s)) for name, _, _, self_s, _ in rows[:8]],
        value_fmt=_seconds_fmt,
    )
    table = _table(
        ["scope", "calls", "cum s", "self s", "mean ms"], rows
    )
    return (
        '<div class="grid">'
        + _card("Profiler hot paths (self seconds)", chart, table=table)
        + "</div>"
    )


def _bench_section(docs: Sequence[Mapping[str, Any]]) -> str:
    cards = []
    for doc in docs:
        entries = doc.get("entries") or {}
        if not isinstance(entries, Mapping) or not entries:
            continue
        rows = []
        for name in sorted(entries):
            entry = entries[name]
            if isinstance(entry, Mapping):
                rows.append(
                    (name, entry.get("metric", ""), entry.get("value"),
                     entry.get("unit", ""))
                )
        title = str(doc.get("suite", doc.get("schema", "bench")))
        cards.append(_card(
            f"Bench: {title}", "",
            table=_table(["case", "metric", "value", "unit"], rows),
        ))
    return f'<div class="grid">{"".join(cards)}</div>' if cards else ""


def _manifest_section(manifest: Mapping[str, Any]) -> str:
    def flat(value: Any, prefix: str, out: list[tuple[str, Any]]) -> None:
        if isinstance(value, Mapping):
            for key in sorted(value):
                flat(value[key], f"{prefix}.{key}" if prefix else str(key), out)
        elif isinstance(value, (list, tuple)):
            out.append((prefix, ", ".join(str(v) for v in value)))
        else:
            out.append((prefix, value))

    rows: list[tuple[str, Any]] = []
    flat(dict(manifest), "", rows)
    return (
        '<div class="grid"><div class="card"><h3>Run manifest</h3>'
        + _table(["field", "value"], rows)
        + "</div></div>"
    )


def render_report(
    title: str = "repro run report",
    manifest: Mapping[str, Any] | None = None,
    metrics: Mapping[str, Any] | None = None,
    telemetry: Sequence[Mapping[str, Any]] | None = None,
    trace: TraceSummary | None = None,
    bench: Sequence[Mapping[str, Any]] | None = None,
    profile: Mapping[str, Any] | None = None,
) -> str:
    """Assemble the self-contained HTML report from plain artifacts.

    Every argument is optional; sections for absent artifacts are
    omitted entirely.  ``telemetry`` takes episode records (see
    :func:`repro.rl.telemetry.episode_records`), ``trace`` a
    :class:`~repro.obs.analyze.TraceSummary`, ``bench`` parsed bench
    documents, ``profile`` a profiler ``as_dict()`` document.
    Returns the full HTML text (write with :func:`write_report`).
    """
    digest = ""
    if manifest and manifest.get("schema"):
        digest = f'schema {manifest["schema"]}'
    sections = [
        _summary_tiles(manifest, metrics),
        _section("Training telemetry",
                 _telemetry_section(list(telemetry or []))),
        _section("Trace analytics",
                 _trace_section(trace) if trace is not None else ""),
        _section("Profile", _profile_section(profile) if profile else ""),
        _section("Benchmarks", _bench_section(list(bench or []))),
        _section("Manifest",
                 _manifest_section(manifest) if manifest else ""),
    ]
    body = "".join(s for s in sections if s)
    if not body:
        body = '<p class="sub">No artifacts were provided.</p>'
    return (
        "<!doctype html>\n<html lang=\"en\">\n<head>\n"
        '<meta charset="utf-8"/>\n'
        '<meta name="viewport" content="width=device-width, initial-scale=1"/>\n'
        f"<title>{escape(title)}</title>\n<style>{_CSS}</style>\n"
        "</head>\n<body>\n<main>\n"
        f"<h1>{escape(title)}</h1>\n"
        f'<p class="sub">{escape(digest)}</p>\n'
        f"{body}\n</main>\n</body>\n</html>\n"
    )


def write_report(path: str | Path, **kwargs: Any) -> Path:
    """Render and write the report; returns the output path."""
    out = Path(path)
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(render_report(**kwargs), encoding="utf-8")
    return out
