"""Scheduling reward functions (paper section III-A, Eq. 1 and Eq. 2).

Reward functions reflect scheduling objectives and are supplied by the
site.  The paper gives two examples:

* **Capability computing** (Eq. 1) balances three goals — starvation
  avoidance, capability-job promotion, and utilization:

  .. math::

     w_1 \\frac{\\bar t_i}{t_{max}} + w_2 \\frac{\\bar n_i}{N}
         + w_3 \\frac{N_{used}}{N}

  where :math:`\\bar t_i` is the mean wait of the *selected* jobs,
  :math:`t_{max}` the maximum wait over queued jobs, :math:`\\bar n_i`
  the mean size of the selected jobs, and :math:`N_{used}` the occupied
  node count.  Selecting long-waiting and large jobs, and keeping nodes
  busy, all raise the reward.

* **Capacity computing** (Eq. 2) targets fast turnaround:

  .. math::

     \\frac{\\sum_{j \\in J} -1/t_j}{c}

  Interpretation note (documented in DESIGN.md §4): we take ``t_j`` to
  be the *runtime estimate* of waiting job ``j``.  Each waiting short
  job then contributes a large negative term, so the agent is pushed to
  drain short jobs quickly — the shortest-job-first flavour that
  minimizes average wait.  (Reading ``t_j`` as the elapsed wait time
  would reward *aging* the queue, contradicting the paper's stated goal
  of minimizing average wait.)

Both rewards are evaluated after each individual job selection using
the state the selection produced, matching the paper's decomposition of
one scheduling decision into a series of single-job selections.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol, Sequence

from repro.sim.cluster import Cluster
from repro.sim.job import Job


class RewardFunction(Protocol):
    """Computes the reward of the current scheduling situation.

    Parameters mirror what a DRAS agent observes: the jobs selected so
    far in this scheduling instance, the jobs still waiting, the
    cluster, and the current time.
    """

    def __call__(
        self,
        selected: Sequence[Job],
        waiting: Sequence[Job],
        cluster: Cluster,
        now: float,
    ) -> float: ...


@dataclass(frozen=True)
class CapabilityReward:
    """Eq. (1): starvation avoidance + capability promotion + utilization.

    The paper's Theta experiments use ``w1 = w2 = w3 = 1/3``.  A higher
    ``w1`` enforces a more stringent starvation requirement.
    """

    w1: float = 1.0 / 3.0
    w2: float = 1.0 / 3.0
    w3: float = 1.0 / 3.0

    def __call__(
        self,
        selected: Sequence[Job],
        waiting: Sequence[Job],
        cluster: Cluster,
        now: float,
    ) -> float:
        starvation = 0.0
        if selected:
            mean_wait = sum(j.queued_time(now) if j.start_time is None
                            else j.wait_time for j in selected) / len(selected)
            t_max = max(
                (j.queued_time(now) for j in waiting),
                default=0.0,
            )
            t_max = max(
                t_max,
                max(
                    (j.queued_time(now) if j.start_time is None else j.wait_time
                     for j in selected),
                    default=0.0,
                ),
            )
            if t_max > 0:
                starvation = mean_wait / t_max
        # normalize by *live* capacity: when nodes are down, keeping the
        # surviving capacity busy should still earn full reward
        capacity = max(1, cluster.up_nodes)
        capability = 0.0
        if selected:
            mean_size = sum(j.size for j in selected) / len(selected)
            capability = mean_size / capacity
        utilization = cluster.used_nodes / capacity
        return self.w1 * starvation + self.w2 * capability + self.w3 * utilization


@dataclass(frozen=True)
class CapacityReward:
    """Eq. (2): penalize keeping short jobs in the queue.

    ``min_walltime`` guards the ``1/t_j`` singularity for (unrealistic)
    sub-second estimates.
    """

    min_walltime: float = 1.0

    def __call__(
        self,
        selected: Sequence[Job],
        waiting: Sequence[Job],
        cluster: Cluster,
        now: float,
    ) -> float:
        if not waiting:
            return 0.0
        total = sum(-1.0 / max(j.walltime, self.min_walltime) for j in waiting)
        return total / len(waiting)


def make_reward(objective: str, **kwargs: float) -> RewardFunction:
    """Factory: ``"capability"`` -> Eq. (1), ``"capacity"`` -> Eq. (2)."""
    if objective == "capability":
        return CapabilityReward(**kwargs)
    if objective == "capacity":
        return CapacityReward(**kwargs)
    raise ValueError(
        f"unknown objective {objective!r}; expected 'capability' or 'capacity'"
    )


def job_value(job: Job, objective: str, waiting: Sequence[Job],
              cluster: Cluster, now: float,
              w1: float = 1.0 / 3.0, w2: float = 1.0 / 3.0,
              w3: float = 1.0 / 3.0) -> float:
    """Per-job marginal value under a scheduling objective.

    Used by the Optimization (0-1 knapsack) baseline so that it pursues
    *the same objectives* as DRAS (paper section IV-A): under the
    capability objective a job contributes its normalized wait (the
    starvation term), its normalized size (the capability term) and its
    normalized size again (its utilization contribution); under the
    capacity objective it contributes the ``1/t_j`` penalty it removes
    from the queue by leaving it.
    """
    if objective == "capability":
        t_max = max((j.queued_time(now) for j in waiting), default=0.0)
        starve = job.queued_time(now) / t_max if t_max > 0 else 0.0
        frac = job.size / max(1, cluster.up_nodes)
        return w1 * starve + w2 * frac + w3 * frac
    if objective == "capacity":
        return 1.0 / max(job.walltime, 1.0)
    raise ValueError(f"unknown objective {objective!r}")
