"""Event-driven cluster-scheduling simulator (CQSim-style substrate).

This package re-implements the trace-based, event-driven scheduling
simulator that the DRAS paper uses for both training and evaluation
(section IV-B).  A real system takes jobs from user submission; the
simulator takes jobs by reading arrival information from a trace and
simulates execution by advancing a virtual clock according to the job
runtime information in the trace.

Layout
------
``job``
    The rigid-job model (size, walltime estimate, actual runtime,
    priority, dependencies) plus lifecycle state and derived metrics.
``cluster``
    The node pool: allocation, release, per-node estimated-available
    times, and the paper's node state encoding.
``events``
    Binary-heap event queue with deterministic tie-breaking.
``queue``
    The wait-queue manager with dependency gating and window extraction.
``backfill``
    EASY-backfilling machinery: shadow time, extra nodes, candidate
    filtering.
``faults``
    Seeded fault injection: node failure/repair processes, job kills,
    requeue policies, and resilience accounting.
``engine``
    The simulation engine that wires everything together and invokes a
    pluggable scheduling policy at every scheduling instance.
``metrics``
    Per-run metric recording (wait/response/slowdown/utilization and
    per-execution-mode breakdowns).
"""

from repro.sim.job import ExecMode, Job, JobState
from repro.sim.cluster import Cluster
from repro.sim.events import Event, EventKind, EventQueue
from repro.sim.queue import WaitQueue
from repro.sim.backfill import BackfillPlanner, Reservation
from repro.sim.faults import FaultConfig, FaultInjector, ResilienceMetrics
from repro.sim.engine import Action, ActionKind, Engine, SchedulingView, SimulationResult
from repro.sim.metrics import MetricsRecorder, RunMetrics
from repro.sim.observers import EventLog, QueueDepthRecorder, UtilizationTimeline
from repro.sim.profile import ResourceProfile

__all__ = [
    "Action",
    "ActionKind",
    "BackfillPlanner",
    "Cluster",
    "Engine",
    "Event",
    "EventKind",
    "EventLog",
    "EventQueue",
    "ExecMode",
    "FaultConfig",
    "FaultInjector",
    "Job",
    "JobState",
    "MetricsRecorder",
    "QueueDepthRecorder",
    "Reservation",
    "ResilienceMetrics",
    "ResourceProfile",
    "RunMetrics",
    "SchedulingView",
    "SimulationResult",
    "UtilizationTimeline",
    "WaitQueue",
]
