"""Full-scale (paper-size) configuration smoke tests.

The benchmark suite runs at a reduced scale for speed; these tests
verify the *paper-size* Theta configuration — 4,360 nodes, the
21.9M-parameter network — actually instantiates and schedules
end-to-end.  (The Cori networks hold ~160M float64 parameters; with
Adam state that is ~5 GB, so only their dimensions are checked.)
"""

import numpy as np
import pytest

from repro.core.config import DRASConfig
from repro.core.dras_pg import DRASPG
from repro.nn.network import count_parameters
from repro.sim.engine import run_simulation
from repro.sim.job import JobState
from repro.workload.models import ThetaModel
from tests.conftest import make_job


@pytest.fixture(scope="module")
def theta_agent():
    return DRASPG(DRASConfig.theta(seed=0))


class TestFullSizeTheta:
    def test_network_size(self, theta_agent):
        assert count_parameters(theta_agent.network) == 21_890_053

    def test_forward_pass_shape(self, theta_agent):
        x = np.random.default_rng(0).random((1, 4460, 2))
        logits = theta_agent.network.forward(x)
        assert logits.shape == (1, 50)
        assert np.isfinite(logits).all()

    def test_schedules_real_sized_jobs(self, theta_agent):
        """A short full-scale episode: 4,360 nodes, 128..4096-node jobs."""
        theta_agent.eval(online_learning=False)
        jobs = [
            make_job(size=s, walltime=3600.0, submit=float(i * 60))
            for i, s in enumerate((128, 4096, 512, 2048, 256, 1024, 128, 128))
        ]
        result = run_simulation(4360, theta_agent, jobs)
        assert all(j.state is JobState.FINISHED for j in result.jobs)

    def test_learning_step_full_size(self, theta_agent):
        """One online-learning episode updates the 21.9M parameters."""
        theta_agent.train()
        fc1 = next(p for p in theta_agent.network.parameters()
                   if p.name == 'fc1.weight')
        before = fc1.value[:4, :4].copy()
        # simultaneous arrivals create multi-job windows, so selections
        # are real choices and the policy gradient is non-zero
        jobs = [make_job(size=1500, walltime=600.0, submit=float(i // 4))
                for i in range(12)]
        run_simulation(4360, theta_agent, jobs)
        after = fc1.value[:4, :4]
        assert theta_agent.updates_done > 0
        assert not np.allclose(before, after)


class TestFullSizeWorkload:
    def test_paper_theta_model_generates(self):
        model = ThetaModel.paper()
        jobs = model.generate(500, np.random.default_rng(0))
        assert all(128 <= j.size <= 4360 for j in jobs)
        assert all(j.runtime <= 86400.0 for j in jobs)

    def test_paper_fcfs_run(self):
        from repro.schedulers import FCFSEasy
        from repro.sim.metrics import RunMetrics

        model = ThetaModel.paper()
        jobs = model.generate(800, np.random.default_rng(1))
        result = run_simulation(4360, FCFSEasy(), jobs)
        m = RunMetrics.from_result(result)
        assert m.num_jobs == 800
        assert 0.3 < m.utilization <= 1.0


class TestCoriDimensions:
    def test_cori_config_dims_only(self):
        cfg = DRASConfig.cori()
        assert cfg.pg_dims.rows == 12176
        assert cfg.pg_dims.param_count == 161_960_053
        # ~1.3 GB of weights plus 3x that in grads/Adam state: checked
        # analytically, not instantiated
