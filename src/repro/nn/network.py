"""Sequential network container and the DRAS network builder."""

from __future__ import annotations

import numpy as np

from repro.check import sanitize as _san
from repro.nn.layers import Conv1x2, Dense, Layer, LeakyReLU, Parameter
from repro.obs import profile as _profile
from repro.obs import trace as _trace


class Network:
    """A simple sequential network.

    With the sanitizer active (``REPRO_SANITIZE=1``) every tensor
    flowing through ``forward``/``backward`` is checked for NaN/Inf, so
    numerical corruption is caught at the layer that produced it.  With
    a global tracer active (``REPRO_TRACE=path``) each forward/backward
    pass is recorded as a ``nn.forward`` / ``nn.backward`` span; neither
    hook changes any computed value.
    """

    def __init__(self, layers: list[Layer]) -> None:
        if not layers:
            raise ValueError("a network needs at least one layer")
        self.layers = layers

    def forward(self, x: np.ndarray) -> np.ndarray:
        """Run ``x`` through every layer; returns the final activation."""
        prof = _profile.global_profiler()
        if prof is not None:
            with prof.scope("nn.forward"):
                return self._instrumented_forward(x)
        return self._instrumented_forward(x)

    def _instrumented_forward(self, x: np.ndarray) -> np.ndarray:
        tracer = _trace.global_tracer()
        if tracer is None:
            return self._forward(x)
        # the tuple serialises to the same JSON array as a list would
        with tracer.span("nn.forward", layers=len(self.layers),
                         shape=x.shape):
            return self._forward(x)

    def _forward(self, x: np.ndarray) -> np.ndarray:
        if _san.sanitizer_enabled():
            _san.check_finite("network input", x)
            for i, layer in enumerate(self.layers):
                x = layer.forward(x)
                _san.check_finite(
                    f"forward output of layer {i} ({type(layer).__name__})", x
                )
            return x
        for layer in self.layers:
            x = layer.forward(x)
        return x

    __call__ = forward

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        """Backpropagate ``grad_out``; returns the input gradient."""
        prof = _profile.global_profiler()
        if prof is not None:
            with prof.scope("nn.backward"):
                return self._instrumented_backward(grad_out)
        return self._instrumented_backward(grad_out)

    def _instrumented_backward(self, grad_out: np.ndarray) -> np.ndarray:
        tracer = _trace.global_tracer()
        if tracer is None:
            return self._backward(grad_out)
        with tracer.span("nn.backward", layers=len(self.layers)):
            return self._backward(grad_out)

    def _backward(self, grad_out: np.ndarray) -> np.ndarray:
        if _san.sanitizer_enabled():
            _san.check_finite("network output gradient", grad_out)
            for i, layer in zip(range(len(self.layers) - 1, -1, -1),
                                reversed(self.layers)):
                grad_out = layer.backward(grad_out)
                _san.check_finite(
                    f"backward gradient of layer {i} ({type(layer).__name__})",
                    grad_out,
                )
            return grad_out
        for layer in reversed(self.layers):
            grad_out = layer.backward(grad_out)
        return grad_out

    def parameters(self) -> list[Parameter]:
        """All trainable tensors in layer order."""
        return [p for layer in self.layers for p in layer.parameters()]

    def zero_grad(self) -> None:
        """Reset every parameter's gradient accumulator."""
        for p in self.parameters():
            p.zero_grad()

    def state_dict(self) -> dict[str, np.ndarray]:
        """Parameter values keyed by position-qualified names."""
        return {
            f"{i}.{p.name}": p.value.copy()
            for i, layer in enumerate(self.layers)
            for p in layer.parameters()
        }

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        """Copy values from :meth:`state_dict` output; keys must match."""
        own = {
            f"{i}.{p.name}": p
            for i, layer in enumerate(self.layers)
            for p in layer.parameters()
        }
        if set(own) != set(state):
            missing = set(own) - set(state)
            extra = set(state) - set(own)
            raise ValueError(
                f"state dict mismatch: missing={sorted(missing)}, extra={sorted(extra)}"
            )
        for key, param in own.items():
            value = np.asarray(state[key], dtype=np.float64)
            if value.shape != param.value.shape:
                raise ValueError(
                    f"shape mismatch for {key}: {value.shape} vs {param.value.shape}"
                )
            param.value = value.copy()

    def copy(self) -> "Network":
        """A structural deep copy (used for per-episode model snapshots)."""
        import copy as _copy

        clone = _copy.deepcopy(self)
        for layer in clone.layers:
            # drop forward caches and backward scratch
            for attr in ("_x", "_factor", "_gw_scratch"):
                if hasattr(layer, attr):
                    setattr(layer, attr, None)
        return clone


def build_dras_network(
    rows: int,
    hidden1: int,
    hidden2: int,
    outputs: int,
    rng: np.random.Generator | None = None,
    leaky_alpha: float = 0.01,
) -> Network:
    """The paper's five-layer DRAS network (§III-B, Table III).

    ``input [rows, 2] -> Conv1x2 -> FC(hidden1, no bias) -> leaky ReLU
    -> FC(hidden2, no bias) -> leaky ReLU -> FC(outputs, bias)``

    For Theta DRAS-PG: ``rows=4460, hidden1=4000, hidden2=1000,
    outputs=50`` giving 21,890,053 trainable parameters, matching
    Table III exactly.
    """
    rng = rng or np.random.default_rng(0)
    return Network(
        [
            Conv1x2(rng=rng),
            Dense(rows, hidden1, bias=False, rng=rng, name="fc1"),
            LeakyReLU(leaky_alpha),
            Dense(hidden1, hidden2, bias=False, rng=rng, name="fc2"),
            LeakyReLU(leaky_alpha),
            Dense(hidden2, outputs, bias=True, rng=rng, name="out"),
        ]
    )


def count_parameters(network: Network) -> int:
    """Total number of trainable scalars (Table III bottom row)."""
    return sum(p.size for p in network.parameters())
