"""Interprocedural effect inference over the project call graph.

The RPR6xx determinism-taint rules (:mod:`repro.check.taint`) need to
know, for every function in the project, *what it touches besides its
arguments*: which random-number generators it consumes, whether it
reads a clock or the process environment, whether it performs I/O, and
whether it mutates module-global state.  This module infers those
**effect signatures** statically:

1. **Primitive effects** are extracted per function with a pure
   :mod:`ast` walk, resolved through the per-module import tables of
   the :class:`~repro.check.project.ProjectModel` (so ``np.random.
   default_rng`` and ``from numpy.random import default_rng`` classify
   identically).  RNG consumption is attributed to a concrete
   generator: a seeded instance attribute (``attr:<Class>.<name>``),
   an injected parameter (``param:<name>``), a locally seeded
   generator, or the ambient global state (``global-numpy`` /
   ``global-stdlib`` / an ``unseeded-construct``).
2. **Summaries** propagate bottom-up over the static call graph of
   :mod:`repro.check.hotness` with fixpoint iteration, so recursion and
   mutually recursive cycles converge (the effect domain is a finite
   powerset; union is monotone).  ``functools.partial(f, ...)`` adds an
   edge to ``f`` — the one higher-order pattern the sweep runner uses.

Every effect keeps its *origin* (the function containing the primitive
effect, with file/line), so a rule can report "ambient RNG in X is
reachable from entry Y" at the line that needs fixing.

Like the rest of the static-analysis stack this is pure stdlib: the
analyzed code is never imported.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass

from repro.check.hotness import (
    CallGraph,
    FunctionInfo,
    build_call_graph,
    index_functions,
)
from repro.check.project import ModuleInfo, ProjectModel
from repro.check.rules import ALLOWED_NP_RANDOM, GLOBAL_STDLIB_RANDOM

#: schema tag of the ``repro check --effects-report`` document
EFFECTS_REPORT_SCHEMA = "repro.effects/v1"

# -- effect kinds --------------------------------------------------------------

KIND_RNG = "rng"
KIND_CLOCK = "clock"
KIND_ENV = "env"
KIND_IO = "io"
KIND_MUTATES = "mutates-global"

#: rng details that mean *ambient* randomness (not derived from a seed)
AMBIENT_RNG_DETAILS = frozenset({
    "global-numpy", "global-stdlib", "unseeded-construct",
})

#: clock details that read the wall clock (leak the date into results);
#: monotonic counters (``perf_counter``/``monotonic``) are excluded —
#: they can only measure durations
WALL_CLOCK_DETAILS = frozenset({
    "time.time", "time.time_ns",
    "datetime.datetime.now", "datetime.datetime.utcnow",
    "datetime.datetime.today", "datetime.date.today",
})

#: every clock call the extractor recognises
_CLOCK_CALLS = WALL_CLOCK_DETAILS | frozenset({
    "time.perf_counter", "time.perf_counter_ns",
    "time.monotonic", "time.monotonic_ns",
    "time.process_time", "time.process_time_ns",
})

#: numpy constructors creating a *new* generator; unseeded calls are an
#: ambient-randomness effect, seeded calls are pure
_RNG_CTORS = frozenset({
    "numpy.random.default_rng", "numpy.random.RandomState",
    "random.Random",
})

#: os-level calls with filesystem side effects
_OS_IO_CALLS = frozenset({
    "os.replace", "os.fsync", "os.remove", "os.rename", "os.unlink",
    "os.mkdir", "os.makedirs", "os.rmdir",
})

#: method names on Path-like receivers that perform I/O
_PATH_IO_ATTRS = frozenset({
    "read_text", "write_text", "read_bytes", "write_bytes",
})

#: ``os.environ`` methods that mutate the environment
_ENV_WRITE_ATTRS = frozenset({"setdefault", "pop", "update", "clear"})

#: synchronization-primitive constructors that cannot cross a
#: ``multiprocessing`` fork/pickle boundary
LOCK_CTORS = frozenset({
    "threading.Lock", "threading.RLock", "threading.Condition",
    "threading.Semaphore", "threading.BoundedSemaphore", "threading.Event",
    "threading.Barrier", "multiprocessing.Lock", "multiprocessing.RLock",
    "multiprocessing.Condition", "multiprocessing.Semaphore",
    "multiprocessing.Event",
})


@dataclass(frozen=True)
class Effect:
    """One atomic effect, pinned to the function it originates in."""

    kind: str     #: ``rng`` | ``clock`` | ``env`` | ``io`` | ``mutates-global``
    detail: str   #: which generator / clock / variable, e.g. ``time.time``
    origin: str   #: qualname of the function with the primitive effect
    path: str
    line: int
    col: int

    def sort_key(self) -> tuple:
        """Deterministic ordering for reports and findings."""
        return (self.kind, self.detail, self.origin, self.line, self.col)


# -- rng attribute discovery ---------------------------------------------------

def _dotted_of(project: ProjectModel, info: ModuleInfo,
               node: ast.expr) -> str | None:
    """Import-resolved dotted name of a ``Name``/``Attribute`` chain."""
    return project.qualify(info, node)


def _ctor_is_seeded(call: ast.Call) -> bool:
    """Whether a generator constructor call passes an explicit seed."""
    args = [a for a in call.args if not isinstance(a, ast.Starred)]
    if args and not (isinstance(args[0], ast.Constant) and args[0].value is None):
        return True
    for kw in call.keywords:
        if kw.arg == "seed" and not (
                isinstance(kw.value, ast.Constant) and kw.value.value is None):
            return True
    return False


def _is_generator_annotation(annotation: ast.expr | None) -> bool:
    """Whether a parameter annotation names ``numpy.random.Generator``."""
    if annotation is None:
        return False
    text = ast.unparse(annotation) if hasattr(ast, "unparse") else ""
    return "Generator" in text


def _rng_param_names(fn: ast.AST) -> set[str]:
    """Parameters holding an injected generator (by name or annotation)."""
    names: set[str] = set()
    args = fn.args
    for arg in args.posonlyargs + args.args + args.kwonlyargs:
        if arg.arg == "rng" or arg.arg.endswith("_rng") \
                or _is_generator_annotation(arg.annotation):
            names.add(arg.arg)
    return names


def collect_rng_attrs(project: ProjectModel) -> dict[str, frozenset[str]]:
    """Instance attributes holding a generator, per fully-qualified class.

    An attribute counts when any method assigns it from a generator
    constructor (``self._rng = np.random.default_rng(...)``) or from an
    injected generator parameter (``self.rng = rng``).  Attributes are
    inherited down the class hierarchy, so a subclass method consuming
    a base-class generator still resolves it.
    """
    own: dict[str, set[str]] = {}
    for info, cls in project.iter_classes():
        qual = f"{info.name}.{cls.name}"
        attrs: set[str] = set()
        for item in cls.body:
            if not isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            params = _rng_param_names(item)
            for node in ast.walk(item):
                if not isinstance(node, ast.Assign):
                    continue
                for target in node.targets:
                    if not (isinstance(target, ast.Attribute)
                            and isinstance(target.value, ast.Name)
                            and target.value.id == "self"):
                        continue
                    value = node.value
                    if isinstance(value, ast.Call):
                        dotted = _dotted_of(project, info, value.func)
                        if dotted in _RNG_CTORS \
                                or dotted == "numpy.random.Generator":
                            attrs.add(target.attr)
                    elif isinstance(value, ast.Name) and value.id in params:
                        attrs.add(target.attr)
        if attrs:
            own[qual] = attrs
    # push attributes down to subclasses (deepest inheritance wins by union)
    merged: dict[str, set[str]] = {q: set(a) for q, a in own.items()}
    for qual, attrs in own.items():
        for sub in project.subclasses_of(qual):
            merged.setdefault(sub, set()).update(attrs)
    return {q: frozenset(a) for q, a in merged.items()}


# -- primitive effect extraction -----------------------------------------------

def _local_rng_names(project: ProjectModel, info: ModuleInfo,
                     fn: ast.AST) -> tuple[set[str], set[str]]:
    """Local names bound to (seeded, unseeded) generator constructions."""
    seeded: set[str] = set()
    unseeded: set[str] = set()
    for node in ast.walk(fn):
        if not (isinstance(node, ast.Assign) and isinstance(node.value, ast.Call)):
            continue
        dotted = _dotted_of(project, info, node.value.func)
        if dotted not in _RNG_CTORS:
            continue
        for target in node.targets:
            if isinstance(target, ast.Name):
                (seeded if _ctor_is_seeded(node.value) else unseeded).add(
                    target.id)
    return seeded, unseeded


def _function_effects(project: ProjectModel, fi: FunctionInfo,
                      rng_attrs: dict[str, frozenset[str]]) -> set[Effect]:
    """The primitive (non-transitive) effects of one function."""
    info = fi.module
    effects: set[Effect] = set()
    own_class = f"{info.name}.{fi.cls}" if fi.cls is not None else None
    own_rng_attrs = rng_attrs.get(own_class, frozenset()) if own_class else frozenset()
    rng_params = _rng_param_names(fi.node)
    local_seeded, _local_unseeded = _local_rng_names(project, info, fi.node)
    global_names: set[str] = set()

    def emit(kind: str, detail: str, node: ast.AST) -> None:
        effects.add(Effect(kind, detail, fi.qualname, info.path,
                           getattr(node, "lineno", 0),
                           getattr(node, "col_offset", 0)))

    for node in ast.walk(fi.node):
        if isinstance(node, (ast.Global, ast.Nonlocal)):
            if isinstance(node, ast.Global):
                global_names.update(node.names)
            continue

        if isinstance(node, ast.Name) and isinstance(node.ctx, ast.Store) \
                and node.id in global_names:
            emit(KIND_MUTATES, node.id, node)
            continue

        if isinstance(node, ast.Attribute):
            # consuming a generator held on self (any load advances or
            # exposes the stream; plain stores are re-seeding, not use)
            if (isinstance(node.value, ast.Name) and node.value.id == "self"
                    and node.attr in own_rng_attrs
                    and isinstance(node.ctx, ast.Load)):
                emit(KIND_RNG, f"attr:{own_class}.{node.attr}", node)
            elif isinstance(node.ctx, (ast.Store, ast.Del)):
                dotted = _dotted_of(project, info, node)
                if dotted is not None and "." in dotted \
                        and not dotted.startswith("self."):
                    head = dotted.split(".", 1)[0]
                    if head in info.imports:
                        emit(KIND_MUTATES, dotted, node)
            continue

        if isinstance(node, ast.Subscript):
            dotted = _dotted_of(project, info, node.value) \
                if isinstance(node.value, (ast.Name, ast.Attribute)) else None
            if dotted == "os.environ":
                if isinstance(node.ctx, (ast.Store, ast.Del)):
                    emit(KIND_ENV, "os.environ-write", node)
                else:
                    emit(KIND_ENV, "os.environ", node)
            continue

        if not isinstance(node, ast.Call):
            continue

        func = node.func
        if isinstance(func, ast.Name):
            if func.id == "open" \
                    and project.resolve_local(info, func.id) is None:
                emit(KIND_IO, "open", node)
            elif func.id == "print" \
                    and project.resolve_local(info, func.id) is None:
                emit(KIND_IO, "print", node)
            elif func.id in rng_params:
                emit(KIND_RNG, f"param:{func.id}", node)
            dotted = _dotted_of(project, info, func)
        else:
            dotted = _dotted_of(project, info, func)

        if dotted is not None:
            root, _, leaf = dotted.rpartition(".")
            if dotted in _RNG_CTORS:
                if not _ctor_is_seeded(node):
                    emit(KIND_RNG, "unseeded-construct", node)
            elif dotted.startswith("numpy.random.") \
                    and leaf not in ALLOWED_NP_RANDOM:
                emit(KIND_RNG, "global-numpy", node)
            elif root == "random" and leaf in GLOBAL_STDLIB_RANDOM:
                emit(KIND_RNG, "global-stdlib", node)
            elif dotted in _CLOCK_CALLS:
                emit(KIND_CLOCK, dotted, node)
            elif dotted == "os.getenv":
                emit(KIND_ENV, "os.getenv", node)
            elif dotted.startswith("os.environ."):
                if leaf in _ENV_WRITE_ATTRS:
                    emit(KIND_ENV, "os.environ-write", node)
                else:
                    emit(KIND_ENV, "os.environ", node)
            elif dotted.startswith("subprocess.") or dotted in _OS_IO_CALLS:
                emit(KIND_IO, dotted, node)
            elif dotted.startswith(("sys.stdout.", "sys.stderr.", "sys.stdin.")):
                emit(KIND_IO, dotted, node)

        # generator methods: x.normal(), self._rng.choice(), rng.integers()
        if isinstance(func, ast.Attribute):
            receiver = func.value
            if isinstance(receiver, ast.Name):
                if receiver.id in rng_params:
                    emit(KIND_RNG, f"param:{receiver.id}", node)
                elif receiver.id in local_seeded:
                    emit(KIND_RNG, "local-seeded", node)
            if func.attr in _PATH_IO_ATTRS:
                emit(KIND_IO, f"Path.{func.attr}", node)
    return effects


# -- call-graph augmentation & propagation -------------------------------------

def _partial_edges(project: ProjectModel,
                   index: dict[str, FunctionInfo]) -> dict[str, set[str]]:
    """Extra edges for ``functools.partial(f, ...)`` references."""
    extra: dict[str, set[str]] = {}
    for qual, fi in index.items():
        for node in ast.walk(fi.node):
            if not isinstance(node, ast.Call) or not node.args:
                continue
            dotted = _dotted_of(project, fi.module, node.func)
            if dotted not in ("functools.partial", "functools.partialmethod"):
                continue
            target = node.args[0]
            resolved_qual: str | None = None
            if isinstance(target, ast.Name):
                resolved = project.resolve_local(fi.module, target.id)
                if resolved is not None and isinstance(
                        resolved[1], (ast.FunctionDef, ast.AsyncFunctionDef)):
                    resolved_qual = f"{resolved[0].name}.{resolved[1].name}"
            elif (isinstance(target, ast.Attribute)
                  and isinstance(target.value, ast.Name)
                  and target.value.id == "self" and fi.cls is not None):
                candidate = f"{fi.module.name}.{fi.cls}.{target.attr}"
                if candidate in index:
                    resolved_qual = candidate
            if resolved_qual is not None and resolved_qual in index:
                extra.setdefault(qual, set()).add(resolved_qual)
    return extra


def _propagate(primitive: dict[str, set[Effect]],
               edges: dict[str, tuple[str, ...]]) -> dict[str, frozenset[Effect]]:
    """Bottom-up fixpoint: a function has its callees' effects too."""
    summary: dict[str, set[Effect]] = {
        qual: set(effs) for qual, effs in primitive.items()
    }
    order = sorted(edges)
    changed = True
    while changed:
        changed = False
        for qual in order:
            current = summary.setdefault(qual, set())
            before = len(current)
            for callee in edges.get(qual, ()):
                callee_effects = summary.get(callee)
                if callee_effects:
                    current |= callee_effects
            if len(current) != before:
                changed = True
    return {qual: frozenset(effs) for qual, effs in summary.items()}


@dataclass(frozen=True)
class EffectModel:
    """The computed effect signatures of one project."""

    index: dict[str, FunctionInfo]
    graph: CallGraph
    edges: dict[str, tuple[str, ...]]          #: call edges incl. partial()
    rng_attrs: dict[str, frozenset[str]]
    primitive: dict[str, tuple[Effect, ...]]
    summary: dict[str, tuple[Effect, ...]]

    def effects_of(self, qualname: str) -> tuple[Effect, ...]:
        """Transitive effect signature of ``qualname`` (empty if pure)."""
        return self.summary.get(qualname, ())

    def reachable(self, qualname: str) -> set[str]:
        """Functions reachable from ``qualname`` over the call graph."""
        seen: set[str] = set()
        frontier = [qualname]
        while frontier:
            current = frontier.pop()
            for callee in self.edges.get(current, ()):
                if callee not in seen:
                    seen.add(callee)
                    frontier.append(callee)
        return seen


def compute_effects(project: ProjectModel) -> EffectModel:
    """Infer every function's effect signature for one project."""
    index = index_functions(project)
    graph = build_call_graph(project, index)
    extra = _partial_edges(project, index)
    edges = {
        qual: tuple(sorted(set(graph.edges.get(qual, ()))
                           | extra.get(qual, set())))
        for qual in index
    }
    rng_attrs = collect_rng_attrs(project)
    primitive = {
        qual: _function_effects(project, index[qual], rng_attrs)
        for qual in sorted(index)
    }
    summary = _propagate(primitive, edges)
    return EffectModel(
        index=index,
        graph=graph,
        edges=edges,
        rng_attrs=rng_attrs,
        primitive={q: tuple(sorted(e, key=Effect.sort_key))
                   for q, e in primitive.items()},
        summary={q: tuple(sorted(e, key=Effect.sort_key))
                 for q, e in summary.items()},
    )


_CACHE_ATTR = "_effects_cache"


def effects_for_project(project: ProjectModel) -> EffectModel:
    """Compute (and cache on the project) the effect model.

    Unlike the hotness model this needs no external baseline — effect
    inference is purely structural, so it works on any tree.
    """
    cached = getattr(project, _CACHE_ATTR, None)
    if cached is not None:
        return cached
    model = compute_effects(project)
    setattr(project, _CACHE_ATTR, model)
    return model


# -- machine-readable report ---------------------------------------------------

def effects_report(model: EffectModel) -> dict:
    """The ``repro check --effects-report`` JSON document.

    Lists every function with a non-empty transitive effect signature;
    pure functions are summarised by count only, keeping the artifact
    small enough to diff between CI runs.
    """
    functions = {}
    for qual in sorted(model.summary):
        effects = model.summary[qual]
        if not effects:
            continue
        functions[qual] = [
            {"kind": e.kind, "detail": e.detail, "origin": e.origin,
             "path": e.path, "line": e.line}
            for e in effects
        ]
    return {
        "schema": EFFECTS_REPORT_SCHEMA,
        "functions_total": len(model.index),
        "functions_pure": len(model.index) - len(functions),
        "rng_attributes": {
            cls: sorted(attrs) for cls, attrs in sorted(model.rng_attrs.items())
        },
        "functions": functions,
    }
