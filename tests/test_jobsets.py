"""Unit tests for jobset building and the three-phase curriculum."""

import numpy as np
import pytest

from repro.workload.jobsets import (
    normalize_times,
    real_jobsets,
    sampled_jobset,
    split_weeks,
    synthetic_jobsets,
    three_phase_curriculum,
)
from repro.workload.models import ThetaModel
from tests.conftest import make_job


class TestNormalizeTimes:
    def test_shifts_to_zero(self):
        jobs = [make_job(submit=100.0), make_job(submit=150.0)]
        out = normalize_times(jobs)
        assert out[0].submit_time == 0.0
        assert out[1].submit_time == 50.0

    def test_returns_fresh_copies(self):
        job = make_job(submit=100.0)
        out = normalize_times([job])
        assert out[0] is not job
        assert job.submit_time == 100.0  # original untouched

    def test_empty(self):
        assert normalize_times([]) == []


class TestSplitWeeks:
    def test_splits_by_week(self):
        week = 7 * 24 * 3600.0
        jobs = [
            make_job(submit=0.0),
            make_job(submit=week * 0.5),
            make_job(submit=week * 1.5),
        ]
        chunks = split_weeks(jobs)
        assert len(chunks) == 2
        assert len(chunks[0]) == 2
        assert len(chunks[1]) == 1

    def test_chunk_times_rezeroed(self):
        week = 7 * 24 * 3600.0
        jobs = [make_job(submit=week * 1.25)]
        chunks = split_weeks(jobs)
        assert chunks[0][0].submit_time == 0.0

    def test_cross_chunk_dependencies_dropped(self):
        week = 7 * 24 * 3600.0
        parent = make_job(submit=0.0, job_id=1)
        child = make_job(submit=week * 1.5, deps=(1,), job_id=2)
        sibling = make_job(submit=week * 1.4, job_id=3)
        chunks = split_weeks([parent, child, sibling])
        child_copy = [j for j in chunks[1] if j.job_id == 2][0]
        assert child_copy.dependencies == ()

    def test_within_chunk_dependencies_kept(self):
        parent = make_job(submit=0.0, job_id=1)
        child = make_job(submit=100.0, deps=(1,), job_id=2)
        chunks = split_weeks([parent, child])
        child_copy = [j for j in chunks[0] if j.job_id == 2][0]
        assert child_copy.dependencies == (1,)

    def test_empty(self):
        assert split_weeks([]) == []


class TestSampledJobset:
    def _base(self):
        return [make_job(size=s, walltime=100.0 * s, submit=float(i * 60))
                for i, s in enumerate((1, 2, 4, 8), start=0)]

    def test_job_count(self, rng):
        out = sampled_jobset(self._base(), 50, rng)
        assert len(out) == 50

    def test_jobs_drawn_from_base(self, rng):
        base = self._base()
        base_shapes = {(j.size, j.walltime) for j in base}
        out = sampled_jobset(base, 100, rng)
        assert {(j.size, j.walltime) for j in out} <= base_shapes

    def test_poisson_rate_matches_base(self, rng):
        base = [make_job(submit=float(i * 100)) for i in range(50)]
        out = sampled_jobset(base, 4000, rng)
        empirical = (len(out) - 1) / (out[-1].submit_time - out[0].submit_time)
        assert empirical == pytest.approx(0.01, rel=0.1)

    def test_explicit_rate(self, rng):
        out = sampled_jobset(self._base(), 2000, rng, rate=1.0)
        empirical = (len(out) - 1) / (out[-1].submit_time - out[0].submit_time)
        assert empirical == pytest.approx(1.0, rel=0.1)

    def test_dependencies_dropped(self, rng):
        base = [make_job(job_id=1), make_job(deps=(1,), job_id=2, submit=10.0)]
        out = sampled_jobset(base, 20, rng)
        assert all(j.dependencies == () for j in out)

    def test_errors(self, rng):
        with pytest.raises(ValueError, match="empty"):
            sampled_jobset([], 10, rng)
        with pytest.raises(ValueError, match="positive"):
            sampled_jobset(self._base(), 0, rng)
        with pytest.raises(ValueError, match="degenerate"):
            sampled_jobset([make_job()], 10, rng)


class TestRealJobsets:
    def test_short_trace_split_into_equal_chunks(self):
        jobs = [make_job(submit=float(i * 100)) for i in range(100)]
        sets = real_jobsets(jobs, 4)
        assert len(sets) == 4
        assert sum(len(s) for s in sets) >= 90  # first 4 chunks cover most

    def test_week_chunks_for_long_trace(self):
        week = 7 * 24 * 3600.0
        jobs = [make_job(submit=i * week / 4) for i in range(40)]  # 10 weeks
        sets = real_jobsets(jobs, 3)
        assert len(sets) == 3
        # each chunk spans at most one week after re-zeroing
        for s in sets:
            assert max(j.submit_time for j in s) <= week

    def test_errors(self):
        with pytest.raises(ValueError, match="empty"):
            real_jobsets([], 1)
        with pytest.raises(ValueError):
            real_jobsets([make_job()], 0)


class TestSyntheticJobsets:
    def test_counts(self, rng):
        model = ThetaModel.scaled(64)
        sets = synthetic_jobsets(model, 4, 30, rng)
        assert len(sets) == 4
        assert all(len(s) == 30 for s in sets)

    def test_load_factors_cycle(self, rng):
        model = ThetaModel.scaled(64)
        sets = synthetic_jobsets(model, 2, 300, rng, load_factors=(0.5, 2.0))
        span0 = sets[0][-1].submit_time
        span1 = sets[1][-1].submit_time
        assert span0 > span1  # lighter load spreads arrivals out

    def test_errors(self, rng):
        model = ThetaModel.scaled(64)
        with pytest.raises(ValueError):
            synthetic_jobsets(model, 0, 10, rng)


class TestCurriculum:
    def _setup(self, rng):
        model = ThetaModel.scaled(64)
        base = model.generate(200, rng)
        return model, base

    def test_default_order(self, rng):
        model, base = self._setup(rng)
        phases = three_phase_curriculum(
            model, base, rng, n_sampled=2, n_real=2, n_synthetic=3,
            jobs_per_set=40,
        )
        assert [p.name for p in phases] == ["sampled", "real", "synthetic"]
        assert [len(p) for p in phases] == [2, 2, 3]

    def test_custom_order(self, rng):
        model, base = self._setup(rng)
        phases = three_phase_curriculum(
            model, base, rng, n_sampled=1, n_real=1, n_synthetic=1,
            jobs_per_set=20, order=("synthetic", "real", "sampled"),
        )
        assert [p.name for p in phases] == ["synthetic", "real", "sampled"]

    def test_invalid_order_rejected(self, rng):
        model, base = self._setup(rng)
        with pytest.raises(ValueError, match="permutation"):
            three_phase_curriculum(model, base, rng, order=("sampled", "real"))
        with pytest.raises(ValueError, match="permutation"):
            three_phase_curriculum(
                model, base, rng, order=("sampled", "sampled", "real")
            )

    def test_all_jobs_pending(self, rng):
        model, base = self._setup(rng)
        phases = three_phase_curriculum(
            model, base, rng, n_sampled=1, n_real=1, n_synthetic=1,
            jobs_per_set=20,
        )
        from repro.sim.job import JobState

        for phase in phases:
            for jobset in phase.jobsets:
                assert all(j.state is JobState.PENDING for j in jobset)
