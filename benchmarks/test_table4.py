"""Benchmark: regenerate Table IV (job distribution by execution mode)."""

import pytest
from conftest import SCALE, save_report

from repro.experiments import table4


def test_table4(benchmark, report_dir):
    rows = benchmark.pedantic(lambda: table4.run(SCALE), rounds=1, iterations=1)
    text = table4.report(rows)
    save_report(report_dir, "table4", text)

    by_method = {r.method: r for r in rows}
    # shares are percentages summing to 100 in both views
    for r in rows:
        assert (r.backfilled_jobs + r.ready_jobs + r.reserved_jobs
                == pytest.approx(100.0, abs=0.01))
        assert (r.backfilled_ch + r.ready_ch + r.reserved_ch
                == pytest.approx(100.0, abs=0.01))
    # reservation-less methods run everything as ready jobs (paper rows 1-4)
    for name in ("Optimization", "Decima-PG", "BinPacking", "Random"):
        assert by_method[name].ready_jobs == pytest.approx(100.0)
        assert by_method[name].ready_ch == pytest.approx(100.0)
    # FCFS and DRAS backfill the majority of jobs ...
    for name in ("FCFS", "DRAS-PG", "DRAS-DQL"):
        assert by_method[name].backfilled_jobs > 50.0
        # ... while reserved jobs consume a disproportionate share of
        # core hours relative to their job count (capability protection)
        assert by_method[name].reserved_ch > by_method[name].reserved_jobs
