"""Unit + property tests for the resource availability profile."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.cluster import Cluster
from repro.sim.profile import ResourceProfile
from tests.conftest import make_job


class TestConstruction:
    def test_validation(self):
        with pytest.raises(ValueError):
            ResourceProfile([], [], 4)
        with pytest.raises(ValueError):
            ResourceProfile([0.0, 0.0], [1, 2], 4)  # not increasing
        with pytest.raises(ValueError):
            ResourceProfile([0.0], [5], 4)          # above capacity
        with pytest.raises(ValueError):
            ResourceProfile([0.0, 1.0], [1], 4)     # length mismatch

    def test_free_counts_validated_against_num_nodes(self):
        """A single segment claiming more free nodes than exist is rejected."""
        with pytest.raises(ValueError, match=r"\[0, num_nodes\]"):
            ResourceProfile([0.0], [9], 8)
        with pytest.raises(ValueError, match=r"\[0, num_nodes\]"):
            ResourceProfile([0.0, 10.0], [4, -1], 8)
        # boundary values are fine
        profile = ResourceProfile([0.0, 10.0], [0, 8], 8)
        assert profile.free_at(10.0) == 8

    def test_num_nodes_must_be_positive(self):
        with pytest.raises(ValueError, match="num_nodes"):
            ResourceProfile([0.0], [0], 0)
        with pytest.raises(ValueError, match="num_nodes"):
            ResourceProfile([0.0], [0], -4)

    def test_breakpoints_must_be_finite(self):
        with pytest.raises(ValueError, match="finite"):
            ResourceProfile([0.0, float("inf")], [2, 4], 4)
        with pytest.raises(ValueError, match="finite"):
            ResourceProfile([float("nan")], [2], 4)

    def test_from_idle_cluster(self):
        profile = ResourceProfile.from_cluster(Cluster(8), now=5.0)
        times, free = profile.steps()
        assert times == [5.0]
        assert free == [8]

    def test_from_loaded_cluster(self):
        cluster = Cluster(8)
        cluster.allocate(make_job(size=4, walltime=50.0), now=0.0)
        cluster.allocate(make_job(size=2, walltime=200.0), now=0.0)
        profile = ResourceProfile.from_cluster(cluster, now=0.0)
        assert profile.free_at(0.0) == 2
        assert profile.free_at(50.0) == 6
        assert profile.free_at(200.0) == 8

    def test_simultaneous_releases_merged(self):
        cluster = Cluster(8)
        cluster.allocate(make_job(size=2, walltime=50.0), now=0.0)
        cluster.allocate(make_job(size=3, walltime=50.0), now=0.0)
        profile = ResourceProfile.from_cluster(cluster, now=0.0)
        assert profile.free_at(50.0) == 8


class TestQueries:
    def _profile(self):
        # 2 free now, 6 free at 50, 8 free at 200
        return ResourceProfile([0.0, 50.0, 200.0], [2, 6, 8], 8)

    def test_free_at_before_start_rejected(self):
        with pytest.raises(ValueError):
            self._profile().free_at(-1.0)

    def test_earliest_start_fits_now(self):
        assert self._profile().earliest_start(2, 10.0) == 0.0

    def test_earliest_start_waits_for_release(self):
        assert self._profile().earliest_start(4, 10.0) == 50.0
        assert self._profile().earliest_start(8, 10.0) == 200.0

    def test_earliest_start_needs_contiguous_window(self):
        # 3 free only during [50, 200): a 500s job of size 7 must wait to 200
        profile = ResourceProfile([0.0, 50.0, 200.0], [2, 7, 8], 8)
        assert profile.earliest_start(7, 100.0) == 50.0
        assert profile.earliest_start(8, 100.0) == 200.0

    def test_dip_blocks_long_jobs(self):
        # free dips at t=100: long jobs starting at 0 must postpone
        profile = ResourceProfile([0.0, 100.0, 150.0], [4, 1, 8], 8)
        assert profile.earliest_start(2, 50.0) == 0.0     # ends before dip
        assert profile.earliest_start(2, 120.0) == 150.0  # spans the dip
        assert profile.earliest_start(1, 120.0) == 0.0    # fits through dip

    def test_invalid_queries(self):
        with pytest.raises(ValueError):
            self._profile().earliest_start(0, 10.0)
        with pytest.raises(ValueError):
            self._profile().earliest_start(9, 10.0)
        with pytest.raises(ValueError):
            self._profile().earliest_start(2, 0.0)


class TestReserve:
    def test_reserve_subtracts_capacity(self):
        profile = ResourceProfile([0.0], [8], 8)
        profile.reserve(10.0, 3, 20.0)
        assert profile.free_at(5.0) == 8
        assert profile.free_at(10.0) == 5
        assert profile.free_at(29.0) == 5
        assert profile.free_at(30.0) == 8

    def test_reserve_respects_capacity(self):
        profile = ResourceProfile([0.0], [2], 8)
        with pytest.raises(ValueError, match="exceeds free"):
            profile.reserve(0.0, 3, 10.0)

    def test_sequential_planning(self):
        """Plan jobs in order; each reservation affects the next query."""
        profile = ResourceProfile([0.0], [4], 4)
        t1 = profile.earliest_start(4, 100.0)
        profile.reserve(t1, 4, 100.0)
        t2 = profile.earliest_start(2, 50.0)
        assert t1 == 0.0
        assert t2 == 100.0

    @settings(max_examples=40, deadline=None)
    @given(
        requests=st.lists(
            st.tuples(st.integers(1, 8), st.floats(1.0, 100.0)),
            min_size=1, max_size=8,
        )
    )
    def test_property_planned_starts_feasible(self, requests):
        """earliest_start + reserve never violates capacity."""
        profile = ResourceProfile([0.0], [8], 8)
        for size, duration in requests:
            start = profile.earliest_start(size, duration)
            profile.reserve(start, size, duration)  # must not raise
        _, free = profile.steps()
        assert all(0 <= f <= 8 for f in free)
