"""Availability profiles for multi-reservation planning.

EASY backfilling (the paper's baseline and what DRAS builds on) keeps a
single reservation.  *Conservative* backfilling — the classic stricter
alternative — gives **every** queued job a reservation, so a candidate
may only jump ahead if it delays none of them.  Answering that requires
a view of free capacity over future time: a step function built from
running jobs' estimated releases and planned reservations.

:class:`ResourceProfile` maintains that step function and supports the
two queries conservative planning needs: the earliest start time for a
``(size, duration)`` request, and capacity subtraction once the request
is placed.
"""

from __future__ import annotations

import math

import numpy as np

from repro.sim.cluster import Cluster

#: sentinel horizon for "runs forever" segments
_FAR = math.inf


class ResourceProfile:
    """Free-capacity step function over future time.

    Internally a sorted list of breakpoints ``t_0 < t_1 < ...`` with
    free-node counts ``f_i`` valid on ``[t_i, t_{i+1})``; the final
    segment extends to infinity.
    """

    __slots__ = ("_times", "_free", "num_nodes")

    def __init__(self, times: list[float], free: list[int], num_nodes: int) -> None:
        if num_nodes <= 0:
            raise ValueError(f"num_nodes must be positive, got {num_nodes}")
        if len(times) != len(free) or not times:
            raise ValueError("times and free must be equal-length, non-empty")
        if any(not math.isfinite(t) for t in times):
            raise ValueError("breakpoints must be finite")
        if any(b <= a for a, b in zip(times, times[1:])):
            raise ValueError("times must be strictly increasing")
        if any(f < 0 or f > num_nodes for f in free):
            raise ValueError("free counts must lie in [0, num_nodes]")
        self._times = list(times)
        self._free = list(free)
        self.num_nodes = num_nodes

    @classmethod
    def from_cluster(cls, cluster: Cluster, now: float) -> "ResourceProfile":
        """Profile induced by running jobs' walltime estimates."""
        releases = cluster.estimated_release_times(now)
        times = [now]
        free = [cluster.available_nodes]
        for t in np.unique(releases):
            count = int(np.sum(releases == t))
            t = float(max(t, now))
            # exact merge of identical breakpoints (np.unique output);
            # a tolerance would wrongly fuse distinct release times
            if t == times[-1]:  # repro: noqa[float-time-eq]
                free[-1] += count
            else:
                times.append(t)
                free.append(free[-1] + count)
        return cls(times, free, cluster.num_nodes)

    # -- queries ------------------------------------------------------------
    def free_at(self, t: float) -> int:
        """Free nodes at time ``t`` (>= first breakpoint)."""
        if t < self._times[0]:
            raise ValueError(f"time {t} precedes the profile start")
        idx = int(np.searchsorted(self._times, t, side="right")) - 1
        return self._free[idx]

    def earliest_start(self, size: int, duration: float) -> float:
        """Earliest ``t`` with ``size`` nodes free on ``[t, t+duration)``."""
        if size <= 0 or size > self.num_nodes:
            raise ValueError(f"size {size} not schedulable on {self.num_nodes} nodes")
        if duration <= 0:
            raise ValueError("duration must be positive")
        n = len(self._times)
        for i in range(n):
            if self._free[i] < size:
                continue
            start = self._times[i]
            end = start + duration
            ok = True
            j = i + 1
            while j < n and self._times[j] < end:
                if self._free[j] < size:
                    ok = False
                    break
                j += 1
            if ok:
                return start
        # all breakpoints exhausted: the final segment has full capacity
        # of the last step; if it fits there, the last breakpoint works —
        # handled above — otherwise the request can never fit, which is
        # impossible since free counts eventually return to num_nodes.
        raise RuntimeError(
            "no feasible start found; profile never frees enough nodes "
            f"for size {size} (final free={self._free[-1]})"
        )

    # -- mutation --------------------------------------------------------------
    def reserve(self, start: float, size: int, duration: float) -> None:
        """Subtract ``size`` nodes on ``[start, start+duration)``.

        Raises if the interval lacks capacity (callers should obtain
        ``start`` from :meth:`earliest_start`).
        """
        end = start + duration
        self._insert_breakpoint(start)
        self._insert_breakpoint(end)
        free = self._free
        for i, t in enumerate(self._times):
            if start <= t < end:
                if free[i] < size:
                    raise ValueError(
                        f"reservation of {size} nodes at t={t} exceeds free "
                        f"{free[i]}"
                    )
                free[i] -= size

    def _insert_breakpoint(self, t: float) -> None:
        if math.isinf(t):
            return
        idx = int(np.searchsorted(self._times, t, side="right")) - 1
        # stored-breakpoint identity check, not recomputed arithmetic
        if idx >= 0 and self._times[idx] == t:  # repro: noqa[float-time-eq]
            return
        if t < self._times[0]:
            raise ValueError(f"breakpoint {t} precedes the profile start")
        self._times.insert(idx + 1, t)
        self._free.insert(idx + 1, self._free[idx])

    def steps(self) -> tuple[list[float], list[int]]:
        """``(times, free_counts)`` breakpoints (copies)."""
        return list(self._times), list(self._free)
