"""Tests for interprocedural effect inference and the RPR6xx rules.

The engine tests (:mod:`repro.check.effects`) exercise primitive-effect
extraction and bottom-up propagation on scratch packages, including the
shapes the call graph finds hard: decorators, closures, lambdas,
``functools.partial``, dynamic dispatch through a registry dict, and
mutually recursive cycles.  The rule tests build scratch packages
literally named ``repro`` (the taint roots hard-code the
reproduction's qualnames) with one violation per rule.  Two acceptance
properties are proven on the real tree: fault-injector RNG isolation
is *non-vacuous* (the engine does consume ``FaultInjector._rng``; no
scheduler can), and the committed baseline has zero RPR6xx findings.
"""

from __future__ import annotations

import textwrap
from pathlib import Path

import pytest

from repro.check import analyze_project
from repro.check.effects import (
    AMBIENT_RNG_DETAILS,
    EFFECTS_REPORT_SCHEMA,
    KIND_CLOCK,
    KIND_ENV,
    KIND_IO,
    KIND_MUTATES,
    KIND_RNG,
    collect_rng_attrs,
    compute_effects,
    effects_for_project,
    effects_report,
)
from repro.check.lint import Violation
from repro.check.project import ProjectModel
from repro.check.taint import _scheduler_roots, _sim_train_roots

REPO = Path(__file__).resolve().parent.parent
SRC = REPO / "src" / "repro"


def write_tree(root: Path, files: dict[str, str]) -> Path:
    for rel, body in files.items():
        path = root / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(body), encoding="utf-8")
    return root


def load(tmp_path: Path, files: dict[str, str],
         package: str = "pkg") -> ProjectModel:
    root = write_tree(tmp_path, files)
    return ProjectModel.load(root / package, package=package)


def rpr6(violations: list[Violation]) -> list[Violation]:
    return [v for v in violations if v.rule_id.startswith("RPR6")]


def details(model, qual: str) -> set[tuple[str, str]]:
    return {(e.kind, e.detail) for e in model.effects_of(qual)}


class TestPrimitiveExtraction:
    def test_clock_env_io_and_ambient_rng(self, tmp_path):
        project = load(tmp_path, {
            "pkg/__init__.py": "",
            "pkg/mod.py": """
                import os
                import time
                import numpy as np

                def noisy(path):
                    t = time.time()
                    d = time.perf_counter()
                    flag = os.getenv("FLAG")
                    os.environ["OUT"] = "1"
                    fh = open(path)
                    print(t)
                    x = np.random.rand()
                    return t + d + x
            """,
        })
        model = compute_effects(project)
        got = details(model, "pkg.mod.noisy")
        assert (KIND_CLOCK, "time.time") in got
        assert (KIND_CLOCK, "time.perf_counter") in got
        assert (KIND_ENV, "os.getenv") in got
        assert (KIND_ENV, "os.environ-write") in got
        assert (KIND_IO, "open") in got
        assert (KIND_IO, "print") in got
        assert (KIND_RNG, "global-numpy") in got

    def test_seeded_construction_is_pure_unseeded_is_not(self, tmp_path):
        project = load(tmp_path, {
            "pkg/__init__.py": "",
            "pkg/mod.py": """
                import numpy as np

                def seeded():
                    rng = np.random.default_rng(7)
                    return rng.random()

                def unseeded():
                    rng = np.random.default_rng()
                    return rng.random()
            """,
        })
        model = compute_effects(project)
        assert details(model, "pkg.mod.seeded") == {(KIND_RNG, "local-seeded")}
        assert (KIND_RNG, "unseeded-construct") in details(
            model, "pkg.mod.unseeded")

    def test_injected_generator_parameter(self, tmp_path):
        project = load(tmp_path, {
            "pkg/__init__.py": "",
            "pkg/mod.py": """
                def draw(rng):
                    return rng.integers(10)

                def draw_annotated(gen: "np.random.Generator"):
                    return gen.normal()
            """,
        })
        model = compute_effects(project)
        assert details(model, "pkg.mod.draw") == {(KIND_RNG, "param:rng")}
        assert details(model, "pkg.mod.draw_annotated") == {
            (KIND_RNG, "param:gen")}

    def test_global_mutation(self, tmp_path):
        project = load(tmp_path, {
            "pkg/__init__.py": "",
            "pkg/mod.py": """
                _COUNT = 0

                def bump():
                    global _COUNT
                    _COUNT = _COUNT + 1
                    return _COUNT
            """,
        })
        model = compute_effects(project)
        assert details(model, "pkg.mod.bump") == {(KIND_MUTATES, "_COUNT")}

    def test_pure_function_has_empty_signature(self, tmp_path):
        project = load(tmp_path, {
            "pkg/__init__.py": "",
            "pkg/mod.py": """
                def pure(a, b):
                    return sorted([a, b])
            """,
        })
        model = compute_effects(project)
        assert model.effects_of("pkg.mod.pure") == ()


class TestRngAttributes:
    FILES = {
        "pkg/__init__.py": "",
        "pkg/mod.py": """
            import numpy as np

            class Sampler:
                def __init__(self, seed, rng=None):
                    self._rng = np.random.default_rng(seed)
                    self.injected = rng

                def draw(self):
                    return self._rng.random()

            class SubSampler(Sampler):
                def sub_draw(self):
                    return self._rng.normal()
        """,
    }

    def test_ctor_and_injected_attrs_are_collected(self, tmp_path):
        project = load(tmp_path, dict(self.FILES))
        attrs = collect_rng_attrs(project)
        assert attrs["pkg.mod.Sampler"] == frozenset({"_rng", "injected"})
        # inherited down to the subclass
        assert "_rng" in attrs["pkg.mod.SubSampler"]

    def test_attr_consumption_names_the_owner_class(self, tmp_path):
        project = load(tmp_path, dict(self.FILES))
        model = compute_effects(project)
        assert (KIND_RNG, "attr:pkg.mod.Sampler._rng") in details(
            model, "pkg.mod.Sampler.draw")
        # the subclass method resolves the inherited generator too
        assert (KIND_RNG, "attr:pkg.mod.SubSampler._rng") in details(
            model, "pkg.mod.SubSampler.sub_draw")


class TestPropagation:
    def test_transitive_summary_keeps_origin(self, tmp_path):
        project = load(tmp_path, {
            "pkg/__init__.py": "",
            "pkg/leaf.py": """
                import time

                def tick():
                    return time.time()
            """,
            "pkg/top.py": """
                from pkg.leaf import tick

                def middle():
                    return tick()

                def entry():
                    return middle()
            """,
        })
        model = compute_effects(project)
        effects = model.effects_of("pkg.top.entry")
        assert [(e.kind, e.detail, e.origin) for e in effects] == [
            (KIND_CLOCK, "time.time", "pkg.leaf.tick")]
        # primitive signatures stay local
        assert model.primitive["pkg.top.entry"] == ()

    def test_mutually_recursive_cycle_converges(self, tmp_path):
        project = load(tmp_path, {
            "pkg/__init__.py": "",
            "pkg/mod.py": """
                import time

                def even(n):
                    if n == 0:
                        return True
                    return odd(n - 1)

                def odd(n):
                    if n == 0:
                        return False
                    time.time()
                    return even(n - 1)
            """,
        })
        model = compute_effects(project)
        # the fixpoint terminates and both cycle members carry the effect
        for qual in ("pkg.mod.even", "pkg.mod.odd"):
            assert (KIND_CLOCK, "time.time") in details(model, qual)
            assert {e.origin for e in model.effects_of(qual)} == {
                "pkg.mod.odd"}

    def test_decorated_function_still_analyzed(self, tmp_path):
        project = load(tmp_path, {
            "pkg/__init__.py": "",
            "pkg/mod.py": """
                import functools
                import time

                def traced(fn):
                    @functools.wraps(fn)
                    def wrapper(*args, **kwargs):
                        return fn(*args, **kwargs)
                    return wrapper

                @traced
                def stamped():
                    return time.time()

                def entry():
                    return stamped()
            """,
        })
        model = compute_effects(project)
        assert (KIND_CLOCK, "time.time") in details(model, "pkg.mod.stamped")
        # the call through the decorated name still propagates
        assert (KIND_CLOCK, "time.time") in details(model, "pkg.mod.entry")

    def test_closure_and_lambda_effects_attach_to_enclosing(self, tmp_path):
        project = load(tmp_path, {
            "pkg/__init__.py": "",
            "pkg/mod.py": """
                import time

                def outer():
                    def inner():
                        return time.time()
                    key = lambda x: time.perf_counter()
                    return inner, key
            """,
        })
        model = compute_effects(project)
        got = details(model, "pkg.mod.outer")
        assert (KIND_CLOCK, "time.time") in got
        assert (KIND_CLOCK, "time.perf_counter") in got

    def test_functools_partial_adds_an_edge(self, tmp_path):
        project = load(tmp_path, {
            "pkg/__init__.py": "",
            "pkg/mod.py": """
                import functools

                def sample(rng, n):
                    return rng.integers(n)

                def curry():
                    return functools.partial(sample, n=3)
            """,
        })
        model = compute_effects(project)
        assert "pkg.mod.sample" in model.edges["pkg.mod.curry"]
        assert (KIND_RNG, "param:rng") in details(model, "pkg.mod.curry")

    def test_dynamic_dispatch_through_registry(self, tmp_path):
        project = load(tmp_path, {
            "pkg/__init__.py": "",
            "pkg/policies.py": """
                import time

                class Base:
                    def decide(self, view):
                        raise NotImplementedError

                class Clocked(Base):
                    def decide(self, view):
                        return time.time()

                REGISTRY = {"clocked": Clocked}
            """,
            "pkg/driver.py": """
                from pkg.policies import REGISTRY

                def dispatch(name, view):
                    policy = REGISTRY[name]()
                    return policy.decide(view)
            """,
        })
        model = compute_effects(project)
        # bounded name-matching resolves .decide() to every implementor,
        # so the registry indirection cannot hide the effect
        assert (KIND_CLOCK, "time.time") in details(
            model, "pkg.driver.dispatch")

    def test_reachable_walks_augmented_edges(self, tmp_path):
        project = load(tmp_path, {
            "pkg/__init__.py": "",
            "pkg/mod.py": """
                def a():
                    return b()

                def b():
                    return 1
            """,
        })
        model = compute_effects(project)
        assert "pkg.mod.b" in model.reachable("pkg.mod.a")


class TestEffectsReport:
    def test_report_shape_and_purity_counts(self, tmp_path):
        project = load(tmp_path, {
            "pkg/__init__.py": "",
            "pkg/mod.py": """
                import time

                def impure():
                    return time.time()

                def pure():
                    return 1
            """,
        })
        doc = effects_report(effects_for_project(project))
        assert doc["schema"] == EFFECTS_REPORT_SCHEMA
        assert doc["functions_total"] == 2
        assert doc["functions_pure"] == 1
        assert list(doc["functions"]) == ["pkg.mod.impure"]
        entry = doc["functions"]["pkg.mod.impure"][0]
        assert entry["kind"] == KIND_CLOCK
        assert entry["detail"] == "time.time"
        assert entry["origin"] == "pkg.mod.impure"

    def test_effects_for_project_caches(self, tmp_path):
        project = load(tmp_path, {
            "pkg/__init__.py": "",
            "pkg/mod.py": "def f():\n    return 1\n",
        })
        assert effects_for_project(project) is effects_for_project(project)


# -- rule tests on scratch ``repro`` packages ----------------------------------

#: an engine entry point reaching ambient randomness, a wall-clock read
#: and an environment read — one RPR601/RPR605/RPR606 finding each
SIM_TAINT_TREE = {
    "repro/__init__.py": "",
    "repro/sim/__init__.py": "",
    "repro/sim/engine.py": """
        import os
        import time
        import numpy as np

        def jitter():
            return np.random.rand()

        def stamp():
            return time.time()

        def gate():
            return os.getenv("REPRO_FAST")

        def run_simulation(jobs):
            return jitter() + stamp() + (1 if gate() else 0)
    """,
}

#: a scheduler whose decision code reaches the fault injector's RNG
FAULT_LEAK_TREE = {
    "repro/__init__.py": "",
    "repro/sim/__init__.py": "",
    "repro/sim/faults.py": """
        import numpy as np

        class FaultInjector:
            def __init__(self, seed):
                self._rng = np.random.default_rng(seed)

            def next_failure_gap(self):
                return float(self._rng.exponential(3600.0))
    """,
    "repro/schedulers/__init__.py": "",
    "repro/schedulers/base.py": """
        class BaseScheduler:
            def schedule(self, view):
                raise NotImplementedError
    """,
    "repro/schedulers/peeking.py": """
        from repro.schedulers.base import BaseScheduler
        from repro.sim.faults import FaultInjector

        class PeekingScheduler(BaseScheduler):
            def __init__(self, seed):
                self.injector = FaultInjector(seed)

            def schedule(self, view):
                if self.injector.next_failure_gap() < 60.0:
                    return None
                return view
    """,
}


class TestSimTrainTaintRules:
    @pytest.fixture()
    def findings(self, tmp_path):
        root = write_tree(tmp_path, dict(SIM_TAINT_TREE))
        return rpr6(analyze_project(root / "repro", package="repro"))

    def test_rpr601_flags_ambient_randomness(self, findings):
        hits = [v for v in findings if v.rule_id == "RPR601"]
        assert len(hits) == 1
        assert "global-numpy" in hits[0].message
        assert "repro.sim.engine.jitter" in hits[0].message
        assert "repro.sim.engine.run_simulation" in hits[0].message

    def test_rpr605_flags_wall_clock_only(self, findings):
        hits = [v for v in findings if v.rule_id == "RPR605"]
        assert len(hits) == 1
        assert "time.time" in hits[0].message
        # perf_counter and monotonic never fire (duration-only clocks)
        assert not any("perf_counter" in v.message for v in findings)

    def test_rpr606_flags_environment_read(self, findings):
        hits = [v for v in findings if v.rule_id == "RPR606"]
        assert len(hits) == 1
        assert "os.getenv" in hits[0].message

    def test_findings_pin_the_origin_line(self, findings, tmp_path):
        hit = next(v for v in findings if v.rule_id == "RPR601")
        assert hit.path.endswith("repro/sim/engine.py")
        # np.random.rand() sits on line 7 of the dedented module
        assert hit.line == 7

    def test_noqa_suppresses_at_the_origin(self, tmp_path):
        files = dict(SIM_TAINT_TREE)
        files["repro/sim/engine.py"] = files["repro/sim/engine.py"].replace(
            "return os.getenv(\"REPRO_FAST\")",
            "return os.getenv(\"REPRO_FAST\")  # repro: noqa[ambient-env-read]",
        )
        root = write_tree(tmp_path, files)
        findings = rpr6(analyze_project(root / "repro", package="repro"))
        assert not any(v.rule_id == "RPR606" for v in findings)

    def test_silent_without_recognised_roots(self, tmp_path):
        files = dict(SIM_TAINT_TREE)
        files["repro/sim/engine.py"] = files["repro/sim/engine.py"].replace(
            "def run_simulation(jobs):", "def drive(jobs):")
        root = write_tree(tmp_path, files)
        # no entry point the taint roots recognise -> nothing to gate
        assert rpr6(analyze_project(root / "repro", package="repro")) == []


class TestFaultRngIsolationRule:
    def test_scheduler_reaching_injector_rng_fires(self, tmp_path):
        root = write_tree(tmp_path, dict(FAULT_LEAK_TREE))
        findings = [v for v in rpr6(analyze_project(root / "repro",
                                                    package="repro"))
                    if v.rule_id == "RPR602"]
        assert len(findings) == 1
        assert "PeekingScheduler.schedule" in findings[0].message
        assert "FaultInjector._rng" in findings[0].message
        assert "policy-independent" in findings[0].message

    def test_engine_consuming_injector_rng_is_fine(self, tmp_path):
        files = dict(FAULT_LEAK_TREE)
        # same consumption, but from the engine: no scheduler can reach it
        files["repro/schedulers/peeking.py"] = """
            from repro.schedulers.base import BaseScheduler

            class PeekingScheduler(BaseScheduler):
                def schedule(self, view):
                    return view
        """
        files["repro/sim/engine.py"] = """
            from repro.sim.faults import FaultInjector

            def run_simulation(jobs, seed):
                injector = FaultInjector(seed)
                return injector.next_failure_gap()
        """
        root = write_tree(tmp_path, files)
        findings = rpr6(analyze_project(root / "repro", package="repro"))
        assert not any(v.rule_id == "RPR602" for v in findings)


class TestImpureDigestInputRule:
    def test_clock_beneath_stable_digest_fires(self, tmp_path):
        root = write_tree(tmp_path, {
            "repro/__init__.py": "",
            "repro/hashing.py": """
                import time

                def _canon(obj):
                    return (time.time(), obj)

                def stable_digest(obj):
                    return hash(_canon(obj))
            """,
        })
        findings = [v for v in rpr6(analyze_project(root / "repro",
                                                    package="repro"))
                    if v.rule_id == "RPR603"]
        assert len(findings) == 1
        assert "repro.hashing._canon" in findings[0].message
        assert "purity root repro.hashing.stable_digest" in findings[0].message

    def test_pure_digest_is_clean(self, tmp_path):
        root = write_tree(tmp_path, {
            "repro/__init__.py": "",
            "repro/hashing.py": """
                def stable_digest(obj):
                    return hash(repr(obj))
            """,
        })
        findings = rpr6(analyze_project(root / "repro", package="repro"))
        assert not any(v.rule_id == "RPR603" for v in findings)


class TestUnpicklableCaptureRule:
    def test_direct_captures_fire(self, tmp_path):
        root = write_tree(tmp_path, {
            "repro/__init__.py": "",
            "repro/state/__init__.py": "",
            "repro/state/store.py": """
                import threading

                class StateStore:
                    def __init__(self, path):
                        self._fh = open(path)
                        self._key = lambda x: x
                        self._lock = threading.Lock()
            """,
            "repro/rl/__init__.py": "",
            "repro/rl/checkpoint.py": """
                from repro.state.store import StateStore

                def save(path):
                    return StateStore(path)
            """,
        })
        findings = [v for v in rpr6(analyze_project(root / "repro",
                                                    package="repro"))
                    if v.rule_id == "RPR604"]
        reasons = sorted(v.message for v in findings)
        assert len(reasons) == 3
        assert "an open file handle" in reasons[0]
        assert "a lambda" in reasons[1]
        assert "a synchronization primitive (threading.Lock)" in reasons[2]

    def test_registry_values_join_the_closure(self, tmp_path):
        root = write_tree(tmp_path, {
            "repro/__init__.py": "",
            "repro/agents.py": """
                class AgentA:
                    def __init__(self):
                        self._gen = iter([1, 2, 3])

                KINDS = {"a": AgentA}
            """,
            "repro/rl/__init__.py": "",
            "repro/rl/checkpoint.py": """
                from repro import agents

                def restore(kind):
                    return agents.KINDS[kind]()
            """,
        })
        findings = [v for v in rpr6(analyze_project(root / "repro",
                                                    package="repro"))
                    if v.rule_id == "RPR604"]
        assert len(findings) == 1
        assert "a live iterator" in findings[0].message
        assert "repro.agents.AgentA._gen" in findings[0].message

    def test_silent_without_a_checkpoint_module(self, tmp_path):
        root = write_tree(tmp_path, {
            "repro/__init__.py": "",
            "repro/store.py": """
                class Holder:
                    def __init__(self, path):
                        self._fh = open(path)
            """,
        })
        findings = rpr6(analyze_project(root / "repro", package="repro"))
        assert not any(v.rule_id == "RPR604" for v in findings)


#: a live-telemetry module whose bus (a non-sink) reads the wall clock
LIVE_CLOCK_TREE = {
    "repro/__init__.py": "",
    "repro/obs/__init__.py": "",
    "repro/obs/live.py": """
        import time

        class Bus:
            def publish(self, fields):
                record = {"wall": time.time()}
                record.update(fields)
                return record

        class Writer:
            def on_snapshot(self, record):
                return self.stamp()

            def stamp(self):
                return time.time()

        def schema_tag():
            return "repro.live/v1"
    """,
}


class TestLiveClockConfinementRule:
    def test_non_sink_wall_clock_fires(self, tmp_path):
        root = write_tree(tmp_path, dict(LIVE_CLOCK_TREE))
        findings = rpr6(analyze_project(root / "repro", package="repro"))
        hits = [v for v in findings if v.rule_id == "RPR607"]
        assert len(hits) == 1
        assert "time.time" in hits[0].message
        assert "Bus.publish" in hits[0].message
        # the sink's own clock (Writer.stamp) is sanctioned
        assert not any("Writer" in v.message for v in hits)

    def test_clock_confined_to_the_sink_is_clean(self, tmp_path):
        files = dict(LIVE_CLOCK_TREE)
        files["repro/obs/live.py"] = files["repro/obs/live.py"].replace(
            'record = {"wall": time.time()}', 'record = {"wall": 0.0}')
        root = write_tree(tmp_path, files)
        findings = rpr6(analyze_project(root / "repro", package="repro"))
        assert not any(v.rule_id == "RPR607" for v in findings)

    def test_monotonic_clocks_never_fire(self, tmp_path):
        files = dict(LIVE_CLOCK_TREE)
        files["repro/obs/live.py"] = files["repro/obs/live.py"].replace(
            'record = {"wall": time.time()}',
            'record = {"wall": time.perf_counter()}')
        root = write_tree(tmp_path, files)
        findings = rpr6(analyze_project(root / "repro", package="repro"))
        assert not any(v.rule_id == "RPR607" for v in findings)

    def test_noqa_suppresses_at_the_origin(self, tmp_path):
        files = dict(LIVE_CLOCK_TREE)
        files["repro/obs/live.py"] = files["repro/obs/live.py"].replace(
            'record = {"wall": time.time()}',
            'record = {"wall": time.time()}'
            "  # repro: noqa[live-clock-confinement]")
        root = write_tree(tmp_path, files)
        findings = rpr6(analyze_project(root / "repro", package="repro"))
        assert not any(v.rule_id == "RPR607" for v in findings)

    def test_silent_outside_live_modules(self, tmp_path):
        files = {
            "repro/__init__.py": "",
            "repro/obs/__init__.py": "",
            # same shape, different module name: not a live module
            "repro/obs/view.py": dict(LIVE_CLOCK_TREE)["repro/obs/live.py"],
        }
        root = write_tree(tmp_path, files)
        findings = rpr6(analyze_project(root / "repro", package="repro"))
        assert not any(v.rule_id == "RPR607" for v in findings)


#: a sweep-pool module whose worker path reaches ambient state through
#: a helper — the finding must pin the helper, not the entry point.
#: ``{extra}`` is one statement injected into the helper's body.
POOL_HERMETIC_MODULE = """
    import os
    import time

    import numpy as np

    def _execute_cell(spec, cell, derived_seed, attempt):
        return run_cell(cell, derived_seed)

    def _worker_main(conn):
        while True:
            _execute_cell(None, {{}}, 0, 1)

    def run_cell(cell, derived_seed):
        {extra}
        rng = np.random.default_rng(derived_seed)
        return {{"x": float(rng.random())}}
"""


class TestPoolWorkerHermeticRule:
    def _analyze(self, tmp_path, extra="pass", module="pool"):
        files = {
            "repro/__init__.py": "",
            "repro/experiments/__init__.py": "",
            f"repro/experiments/{module}.py":
                POOL_HERMETIC_MODULE.format(extra=extra),
        }
        root = write_tree(tmp_path, files)
        return [v for v in rpr6(analyze_project(root / "repro",
                                                package="repro"))
                if v.rule_id == "RPR608"]

    def test_derived_seed_worker_is_clean(self, tmp_path):
        assert self._analyze(tmp_path) == []

    def test_ambient_rng_fires(self, tmp_path):
        hits = self._analyze(tmp_path, extra="x = np.random.rand()")
        assert len(hits) == 1
        assert "global-numpy" in hits[0].message
        assert "run_cell" in hits[0].message
        assert "_execute_cell" in hits[0].message or \
            "_worker_main" in hits[0].message

    def test_wall_clock_fires_monotonic_does_not(self, tmp_path):
        hits = self._analyze(tmp_path, extra="t = time.time()")
        assert len(hits) == 1 and "time.time" in hits[0].message
        assert self._analyze(tmp_path / "mono",
                             extra="t = time.perf_counter()") == []

    def test_env_read_fires(self, tmp_path):
        hits = self._analyze(tmp_path, extra='flag = os.getenv("FLAG")')
        assert len(hits) == 1 and "os.getenv" in hits[0].message

    def test_own_noqa_suppresses_at_origin(self, tmp_path):
        assert self._analyze(
            tmp_path,
            extra="t = time.time()  # repro: noqa[pool-worker-hermetic]",
        ) == []

    def test_sanctioned_base_slug_not_reflagged(self, tmp_path):
        # a site individually justified under the base rule's slug
        # (the style used by the observability feature gates) must not
        # need a second, RPR608-specific suppression
        assert self._analyze(
            tmp_path,
            extra='flag = os.getenv("FLAG")  # repro: noqa[ambient-env-read]',
        ) == []

    def test_silent_outside_pool_modules(self, tmp_path):
        # same shape, different module name: not a pool module
        assert self._analyze(tmp_path, extra="x = np.random.rand()",
                             module="grid") == []


# -- real-tree acceptance properties -------------------------------------------

class TestRealTree:
    @pytest.fixture(scope="class")
    def model_and_project(self):
        project = ProjectModel.load(SRC, package="repro")
        return effects_for_project(project), project

    def test_zero_rpr6_findings_on_the_committed_tree(self):
        assert rpr6(analyze_project(SRC, package="repro")) == []

    def test_fault_injector_isolation_is_not_vacuous(self, model_and_project):
        """The static RPR602 proof quantifies over something real.

        The *engine* does consume ``FaultInjector._rng`` (so the
        analysis sees the generator), and there are many scheduler
        entry points (so the universally-quantified claim is not empty)
        — yet none of them can reach the consumption.
        """
        model, project = model_and_project
        target = "attr:repro.sim.faults.FaultInjector._rng"
        engine = {e.detail for e in model.effects_of("repro.sim.engine.Engine.run")}
        assert target in engine
        schedulers = _scheduler_roots(model, project)
        assert len(schedulers) >= 5
        for root in schedulers:
            reached = {e.detail for e in model.effects_of(root)}
            assert target not in reached, root

    def test_sim_train_paths_carry_no_ambient_rng(self, model_and_project):
        model, project = model_and_project
        for root in _sim_train_roots(model, project):
            ambient = [e for e in model.effects_of(root)
                       if e.kind == KIND_RNG and e.detail in AMBIENT_RNG_DETAILS]
            assert ambient == [], root

    def test_live_clock_confinement_is_not_vacuous(self, model_and_project):
        """The RPR607 proof quantifies over something real.

        The committed live module *does* read the wall clock (inside a
        sink, where it is sanctioned) and *does* define plenty of
        non-sink functions — yet the rule reports nothing, because the
        read never escapes the sink classes.
        """
        from repro.check.taint import _live_modules, _sink_classes

        model, project = model_and_project
        assert _live_modules(project) == ["repro.obs.live"]
        sinks = _sink_classes(project, "repro.obs.live")
        assert {"ProgressSink", "SnapshotWriter", "LiveServer"} <= sinks
        assert "LiveBus" not in sinks
        # the subject of the rule exists: a sink really reads time.time
        stamp = details(model, "repro.obs.live.SnapshotWriter.__init__")
        assert (KIND_CLOCK, "time.time") in stamp
        # and the quantifier is non-empty: non-sink live functions exist
        non_sinks = [q for q, fi in model.index.items()
                     if fi.module.name == "repro.obs.live"
                     and fi.cls not in sinks]
        assert len(non_sinks) >= 5

    def test_known_rng_attributes_are_discovered(self, model_and_project):
        model, _ = model_and_project
        assert "_rng" in model.rng_attrs["repro.sim.faults.FaultInjector"]
        assert any(cls.startswith("repro.core.") for cls in model.rng_attrs)
