"""RPR6xx: determinism-taint rules over inferred effect signatures.

Where RPR1xx–RPR4xx look at one expression and RPR5xx at one hot
function, this family asks *interprocedural* questions: what can an
entry point reach, transitively, through the static call graph?  The
answers underwrite the platform's headline reproducibility guarantees
at check time instead of run time:

* RPR601 ``ambient-rng-path`` — no simulate/train entry point may reach
  ambient randomness (the global numpy/stdlib RNG state, or an
  unseeded generator construction).  Every random draw must trace back
  to an explicit seed or an injected ``Generator``.
* RPR602 ``fault-rng-isolation`` — scheduler decision code must never
  consume ``FaultInjector``'s private generator.  This is the static
  proof that the (time, nodes) failure stream is policy-independent:
  swapping schedulers cannot perturb when or where faults strike.
* RPR603 ``impure-digest-input`` — ``stable_digest`` / manifest /
  trace-serialization inputs must be pure: no RNG, clock, environment
  or I/O anywhere beneath them, or digests stop being stable.
* RPR604 ``unpicklable-capture`` — objects that cross checkpoint or
  ``multiprocessing`` boundaries (everything reachable from
  ``repro.rl.checkpoint``) must not capture open file handles, locks,
  or generator iterators in instance attributes.
* RPR605 ``sim-wall-clock`` — simulate/train paths must not read the
  wall clock (``time.time``, ``datetime.now``); monotonic duration
  counters are fine.
* RPR606 ``ambient-env-read`` — simulate/train paths must not consult
  ``os.environ``: a run's behaviour may depend only on its explicit
  config.  Observability feature gates are the sanctioned exception,
  suppressed at the read site with a justification.
* RPR607 ``live-clock-confinement`` — in the live-telemetry module
  (``repro.obs.live``), wall-clock reads are confined to *sink*
  classes (those implementing ``on_snapshot``).  The bus and every
  snapshot emitter stay clock-free, so no seed-determined path can
  reach the wall clock through a publish.
* RPR608 ``pool-worker-hermetic`` — sweep-pool worker entry points
  (``_worker_main`` / ``_execute_cell`` in ``*.experiments.pool``)
  must consume only the derived per-cell seed: no ambient RNG, no
  wall-clock read, no environment access anywhere they can reach.
  This is the static half of the pool's byte-identical-rollup
  contract — a worker whose behaviour depends on ambient state could
  produce different cell payloads on retry or resume.

Findings are pinned at the *origin* of the offending effect (the line
to fix or suppress), with the reachable entry point named in the
message.  All rules run only under ``repro check --strict`` and share
the ``# repro: noqa[slug]`` mechanism and the ratchet baseline.
"""

from __future__ import annotations

import ast
from types import SimpleNamespace
from typing import Iterable, Iterator

from repro.check.effects import (
    AMBIENT_RNG_DETAILS,
    KIND_CLOCK,
    KIND_ENV,
    KIND_IO,
    KIND_RNG,
    LOCK_CTORS,
    WALL_CLOCK_DETAILS,
    Effect,
    EffectModel,
    effects_for_project,
)
from repro.check.hotness import SCHEDULE_ANCHOR, _resolve_anchor
from repro.check.lint import _Suppressions
from repro.check.project import (
    ModuleInfo,
    ProjectFinding,
    ProjectModel,
    ProjectRule,
    register_project,
)

#: fully-qualified simulate/train entry points (filtered to those the
#: project actually defines, so scratch trees opt in by defining them)
SIM_TRAIN_ROOTS = (
    "repro.sim.engine.run_simulation",
    "repro.sim.engine.Engine.run",
    "repro.rl.curriculum.train_with_curriculum",
    "repro.rl.trainer.Trainer.train",
)

#: function names that are purity roots wherever they are defined —
#: their transitive inputs feed content-addressed digests
PURITY_ROOT_NAMES = frozenset({
    "stable_digest", "_json_default", "describe_workload",
})

#: the class whose generator must stay isolated from policy code
FAULT_INJECTOR_CLASS = "FaultInjector"


def _sim_train_roots(model: EffectModel, project: ProjectModel) -> list[str]:
    """Entry points whose transitive behaviour must be seed-determined."""
    roots = [r for r in SIM_TRAIN_ROOTS if r in model.index]
    roots.extend(_resolve_anchor(project, model.index, SCHEDULE_ANCHOR))
    return sorted(set(roots))


def _scheduler_roots(model: EffectModel, project: ProjectModel) -> list[str]:
    """``schedule`` methods of every scheduler — the decision code."""
    return _resolve_anchor(project, model.index, SCHEDULE_ANCHOR)


def _reachable_effects(
    model: EffectModel, roots: Iterable[str],
) -> Iterator[tuple[str, Effect]]:
    """Unique offending-site effects with their first reachable root.

    Several roots usually reach the same origin; reporting each pair
    would multiply findings per fix site.  Deduplicate on the effect
    itself and attribute it to the lexicographically first root so the
    message is stable across runs.
    """
    first_root: dict[Effect, str] = {}
    for root in sorted(roots):
        for effect in model.effects_of(root):
            first_root.setdefault(effect, root)
    for effect in sorted(first_root, key=Effect.sort_key):
        yield first_root[effect], effect


@register_project
class AmbientRngPathRule(ProjectRule):
    """Ambient randomness reachable from a simulate/train entry point."""

    id = "RPR601"
    slug = "ambient-rng-path"
    rationale = (
        "A simulate/train path that touches the global numpy/stdlib RNG "
        "state or constructs an unseeded generator is not reproducible "
        "from its config; thread a seeded np.random.Generator instead."
    )

    def check(self, project: ProjectModel) -> Iterator[ProjectFinding]:
        """Yield ambient-RNG effects on seed-determined paths."""
        model = effects_for_project(project)
        roots = _sim_train_roots(model, project)
        for root, effect in _reachable_effects(model, roots):
            if effect.kind != KIND_RNG or effect.detail not in AMBIENT_RNG_DETAILS:
                continue
            yield ProjectFinding(
                effect.path, effect.line, effect.col,
                f"ambient randomness ({effect.detail}) in {effect.origin} "
                f"is reachable from entry point {root}; derive it from an "
                "explicit seed or injected Generator",
            )


@register_project
class FaultRngIsolationRule(ProjectRule):
    """Scheduler decision code consuming the fault injector's RNG."""

    id = "RPR602"
    slug = "fault-rng-isolation"
    rationale = (
        "The failure stream is policy-independent only because no "
        "scheduler can consume FaultInjector's private generator; any "
        "such path would let the policy perturb when and where faults "
        "strike, invalidating cross-scheduler comparisons."
    )

    def check(self, project: ProjectModel) -> Iterator[ProjectFinding]:
        """Yield fault-RNG consumptions reachable from scheduler code."""
        model = effects_for_project(project)
        roots = _scheduler_roots(model, project)
        for root, effect in _reachable_effects(model, roots):
            if effect.kind != KIND_RNG:
                continue
            if not effect.detail.startswith("attr:"):
                continue
            owner = effect.detail[len("attr:"):].rsplit(".", 1)[0]
            if owner.rsplit(".", 1)[-1] != FAULT_INJECTOR_CLASS:
                continue
            yield ProjectFinding(
                effect.path, effect.line, effect.col,
                f"scheduler entry point {root} reaches {effect.origin}, "
                f"which consumes {effect.detail[5:]} — the failure stream "
                "must stay policy-independent",
            )


@register_project
class ImpureDigestInputRule(ProjectRule):
    """Side effects beneath digest/manifest/trace serialization."""

    id = "RPR603"
    slug = "impure-digest-input"
    rationale = (
        "stable_digest and the manifest/trace serializers must be pure "
        "functions of their arguments; any RNG, clock, environment or "
        "I/O beneath them makes equal runs hash unequal."
    )

    _IMPURE_KINDS = (KIND_RNG, KIND_CLOCK, KIND_ENV, KIND_IO)

    def check(self, project: ProjectModel) -> Iterator[ProjectFinding]:
        """Yield impure effects beneath purity roots."""
        model = effects_for_project(project)
        roots = [q for q in model.index
                 if q.rsplit(".", 1)[-1] in PURITY_ROOT_NAMES]
        for root, effect in _reachable_effects(model, roots):
            if effect.kind not in self._IMPURE_KINDS:
                continue
            yield ProjectFinding(
                effect.path, effect.line, effect.col,
                f"{effect.kind} effect ({effect.detail}) in {effect.origin} "
                f"taints purity root {root}; digest inputs must be pure",
            )


@register_project
class SimWallClockRule(ProjectRule):
    """Wall-clock reads on simulate/train paths."""

    id = "RPR605"
    slug = "sim-wall-clock"
    rationale = (
        "time.time()/datetime.now() on a simulate/train path leaks the "
        "calendar into results; use the engine clock for simulated time "
        "and monotonic counters for durations."
    )

    def check(self, project: ProjectModel) -> Iterator[ProjectFinding]:
        """Yield wall-clock effects on seed-determined paths."""
        model = effects_for_project(project)
        roots = _sim_train_roots(model, project)
        for root, effect in _reachable_effects(model, roots):
            if effect.kind not in (KIND_CLOCK,) \
                    or effect.detail not in WALL_CLOCK_DETAILS:
                continue
            yield ProjectFinding(
                effect.path, effect.line, effect.col,
                f"wall-clock read {effect.detail} in {effect.origin} is "
                f"reachable from entry point {root}",
            )


@register_project
class AmbientEnvReadRule(ProjectRule):
    """``os.environ`` consultation on simulate/train paths."""

    id = "RPR606"
    slug = "ambient-env-read"
    rationale = (
        "A run whose behaviour depends on os.environ is not determined "
        "by its explicit config; pass settings through config objects, "
        "or suppress at sanctioned observability feature gates."
    )

    def check(self, project: ProjectModel) -> Iterator[ProjectFinding]:
        """Yield environment reads/writes on seed-determined paths."""
        model = effects_for_project(project)
        roots = _sim_train_roots(model, project)
        for root, effect in _reachable_effects(model, roots):
            if effect.kind != KIND_ENV:
                continue
            yield ProjectFinding(
                effect.path, effect.line, effect.col,
                f"environment access ({effect.detail}) in {effect.origin} "
                f"is reachable from entry point {root}",
            )


#: the method name that marks a live-view sink class (the sink protocol
#: of :mod:`repro.obs.live`) — the only classes allowed wall-clock reads
#: inside a live-telemetry module
LIVE_SINK_METHOD = "on_snapshot"


def _live_modules(project: ProjectModel) -> list[str]:
    """Live-telemetry modules: ``*.obs.live`` wherever the tree roots."""
    return sorted(
        name for name in project.modules
        if name.split(".")[-2:] == ["obs", "live"]
    )


def _sink_classes(project: ProjectModel, module: str) -> frozenset[str]:
    """Classes in ``module`` implementing the sink protocol."""
    info = project.module(module)
    if info is None:
        return frozenset()
    sinks = set()
    for name in info.classes:
        entry = project.class_def(f"{module}.{name}")
        if entry is None:
            continue
        _, cls = entry
        for item in cls.body:
            if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)) \
                    and item.name == LIVE_SINK_METHOD:
                sinks.add(name)
                break
    return frozenset(sinks)


@register_project
class LiveClockConfinementRule(ProjectRule):
    """Wall-clock reads outside sink classes in the live-telemetry module."""

    id = "RPR607"
    slug = "live-clock-confinement"
    rationale = (
        "Snapshot emitters run on seed-determined simulate/train paths; "
        "only live-view *sinks* (classes implementing on_snapshot) may "
        "read the wall clock, so publishing a snapshot can never leak "
        "the calendar into a run."
    )

    def check(self, project: ProjectModel) -> Iterator[ProjectFinding]:
        """Yield wall-clock effects of non-sink live-module functions."""
        model = effects_for_project(project)
        for module in _live_modules(project):
            sinks = _sink_classes(project, module)
            flagged: set[Effect] = set()
            for qual, fi in sorted(model.index.items()):
                if fi.module.name != module or fi.cls in sinks:
                    continue
                for effect in model.effects_of(qual):
                    if effect.kind not in (KIND_CLOCK,) \
                            or effect.detail not in WALL_CLOCK_DETAILS:
                        continue
                    origin_fi = model.index.get(effect.origin)
                    if origin_fi is not None \
                            and origin_fi.module.name == module \
                            and origin_fi.cls in sinks:
                        continue  # reached a sink's clock: sanctioned
                    if effect in flagged:
                        continue
                    flagged.add(effect)
                    yield ProjectFinding(
                        effect.path, effect.line, effect.col,
                        f"wall-clock read {effect.detail} in "
                        f"{effect.origin} is reachable from non-sink "
                        f"{qual}; wall-clock reads in {module} must stay "
                        "confined to sink classes (on_snapshot "
                        "implementors)",
                    )


# -- RPR608: sweep-pool worker hermeticity -------------------------------------

#: function names that are pool worker entry points wherever a
#: ``*.experiments.pool`` module defines them — the code that runs
#: inside sweep worker processes
POOL_WORKER_ROOT_NAMES = frozenset({"_worker_main", "_execute_cell"})

#: noqa slugs that sanction an effect at its origin line, per effect
#: kind: a site individually justified under the base rule (e.g. an
#: observability feature gate suppressed as ``ambient-env-read``) is
#: equally justified when a sweep worker reaches it, so RPR608 does
#: not demand a second suppression on the same line
_SANCTIONED_BASE_SLUGS = {
    KIND_RNG: ("ambient-rng-path",),
    KIND_CLOCK: ("wall-clock", "sim-wall-clock", "live-clock-confinement"),
    KIND_ENV: ("ambient-env-read",),
}


def _pool_modules(project: ProjectModel) -> list[str]:
    """Sweep-pool modules: ``*.experiments.pool`` wherever the tree roots."""
    return sorted(
        name for name in project.modules
        if name.split(".")[-2:] == ["experiments", "pool"]
    )


def _pool_worker_roots(model: EffectModel,
                       project: ProjectModel) -> list[str]:
    """Worker entry points defined by the project's pool modules."""
    modules = set(_pool_modules(project))
    return sorted(
        qual for qual, fi in model.index.items()
        if fi.module.name in modules
        and qual.rsplit(".", 1)[-1] in POOL_WORKER_ROOT_NAMES
    )


@register_project
class PoolWorkerHermeticRule(ProjectRule):
    """Ambient state reachable from a sweep-pool worker entry point."""

    id = "RPR608"
    slug = "pool-worker-hermetic"
    rationale = (
        "Sweep workers must be pure functions of (spec, cell, derived "
        "seed): any ambient RNG draw, wall-clock read or environment "
        "access they can reach would let a cell's payload vary across "
        "retries, workers or resumes, breaking the pool's byte-identical "
        "rollup contract."
    )

    def check(self, project: ProjectModel) -> Iterator[ProjectFinding]:
        """Yield ambient-state effects reachable from worker entry points."""
        model = effects_for_project(project)
        roots = _pool_worker_roots(model, project)
        if not roots:
            return
        tables = {info.path: _Suppressions(info.source)
                  for info in project.modules.values()}
        for root, effect in _reachable_effects(model, roots):
            if effect.kind == KIND_RNG:
                if effect.detail not in AMBIENT_RNG_DETAILS:
                    continue
                what = f"ambient randomness ({effect.detail})"
            elif effect.kind in (KIND_CLOCK,):
                if effect.detail not in WALL_CLOCK_DETAILS:
                    continue
                what = f"wall-clock read {effect.detail}"
            elif effect.kind == KIND_ENV:
                what = f"environment access ({effect.detail})"
            else:
                continue
            table = tables.get(effect.path)
            if table is not None and any(
                table.suppressed(effect.line,
                                 SimpleNamespace(slug=slug, id=slug))
                for slug in _SANCTIONED_BASE_SLUGS[effect.kind]
            ):
                continue
            yield ProjectFinding(
                effect.path, effect.line, effect.col,
                f"{what} in {effect.origin} is reachable from pool worker "
                f"entry point {root}; sweep workers must consume only the "
                "derived per-cell seed and no ambient state",
            )


# -- RPR604: fork/pickle-safety ------------------------------------------------

def _checkpoint_modules(project: ProjectModel) -> list[ModuleInfo]:
    return [info for name, info in sorted(project.modules.items())
            if name.rsplit(".", 1)[-1] == "checkpoint"]


def _referenced_classes(project: ProjectModel,
                        info: ModuleInfo) -> set[str]:
    """Classes a module references: names, imports (incl. nested),
    and dict-literal registries in the project modules it imports."""
    classes: set[str] = set()

    def note(dotted: str | None) -> None:
        if dotted is None:
            return
        resolved = project.resolve(dotted)
        if resolved is not None and isinstance(resolved[1], ast.ClassDef):
            classes.add(f"{resolved[0].name}.{resolved[1].name}")

    imported_modules: set[str] = set()
    for node in ast.walk(info.tree):
        if isinstance(node, ast.ImportFrom) and node.module:
            base = node.module
            if node.level:  # relative: resolve against the package
                parts = info.package.split(".") if info.package else []
                if node.level > 1:
                    parts = parts[: len(parts) - (node.level - 1)]
                base = ".".join(parts + [node.module])
            imported_modules.add(base)
            for alias in node.names:
                if alias.name != "*":
                    note(f"{base}.{alias.name}")
        elif isinstance(node, (ast.Name, ast.Attribute)):
            note(project.qualify(info, node))
    for name in info.classes:
        classes.add(f"{info.name}.{name}")
    # dict-literal class registries (e.g. persistence._KINDS) in the
    # project modules this module imports: the dispatch is dynamic, so
    # the registry values are treated as referenced classes
    for target in sorted(imported_modules | set(info.imports.values())):
        dep = project.module(target) or project.module(
            target.rpartition(".")[0])
        if dep is None:
            continue
        for value in dep.constants.values():
            if not isinstance(value, ast.Dict):
                continue
            for entry in value.values:
                if isinstance(entry, (ast.Name, ast.Attribute)):
                    note(project.qualify(dep, entry))
    return classes


def _unpicklable_reason(project: ProjectModel, info: ModuleInfo,
                        value: ast.expr) -> str | None:
    """Why ``value`` cannot cross a pickle/fork boundary (None if it can)."""
    if isinstance(value, ast.Lambda):
        return "a lambda"
    if isinstance(value, ast.GeneratorExp):
        return "a generator iterator"
    if not isinstance(value, ast.Call):
        return None
    func = value.func
    if isinstance(func, ast.Name):
        if func.id == "open" and project.resolve_local(info, func.id) is None:
            return "an open file handle"
        if func.id == "iter" and project.resolve_local(info, func.id) is None:
            return "a live iterator"
    dotted = project.qualify(info, func)
    if dotted in LOCK_CTORS:
        return f"a synchronization primitive ({dotted})"
    if isinstance(func, ast.Attribute) and func.attr == "open":
        return "an open file handle"
    return None


@register_project
class UnpicklableCaptureRule(ProjectRule):
    """Unpicklable state captured by checkpoint-crossing objects."""

    id = "RPR604"
    slug = "unpicklable-capture"
    rationale = (
        "Objects reachable from repro.rl.checkpoint cross process and "
        "serialization boundaries (crash-safe checkpoints today, the "
        "multiprocessing sweep pool next); an open file handle, lock or "
        "generator iterator in an instance attribute breaks that at "
        "fork/pickle time."
    )

    def check(self, project: ProjectModel) -> Iterator[ProjectFinding]:
        """Yield unpicklable instance-attribute captures."""
        model = effects_for_project(project)
        closure: set[str] = set()
        for info in _checkpoint_modules(project):
            closure |= _referenced_classes(project, info)
        if not closure:
            return
        # expand: classes instantiated inside methods of closure classes
        # also cross the boundary (they become attribute values)
        changed = True
        while changed:
            changed = False
            for cls_qual in sorted(closure):
                for qual, fi in model.index.items():
                    if fi.cls is None or not qual.startswith(cls_qual + "."):
                        continue
                    for inst in model.graph.instantiated.get(qual, ()):
                        if inst not in closure:
                            closure.add(inst)
                            changed = True
        for cls_qual in sorted(closure):
            entry = project.class_def(cls_qual)
            if entry is None:
                continue
            info, cls = entry
            for item in cls.body:
                if not isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    continue
                for node in ast.walk(item):
                    if not isinstance(node, ast.Assign):
                        continue
                    reason = _unpicklable_reason(project, info, node.value)
                    if reason is None:
                        continue
                    for target in node.targets:
                        if (isinstance(target, ast.Attribute)
                                and isinstance(target.value, ast.Name)
                                and target.value.id == "self"):
                            yield ProjectFinding(
                                info.path, node.lineno, node.col_offset,
                                f"{cls_qual}.{target.attr} captures {reason}; "
                                "instances cross checkpoint/multiprocessing "
                                "boundaries and must stay picklable",
                            )
