"""Node pool management.

The cluster keeps, for every node, the job occupying it and the node's
*estimated available time* (job start + user walltime estimate).  The
paper encodes each node as a ``[1, 2]`` vector: a binary availability
flag and the difference between the estimated available time and the
current time (section III-A).  We store these as NumPy arrays so the
state encoding, the shadow-time computation and utilization accounting
are all vectorized.

Fault support: nodes can be *down* (failed, awaiting repair).  A down
node is neither free nor occupied by a job; its ``_avail_at`` entry
holds the expected repair time, so the EASY shadow-time machinery and
the RL node-state encoding treat it exactly like a busy node that
frees at the repair — no policy needs fault-specific code.
"""

from __future__ import annotations

import numpy as np

from repro.check import sanitize as _san
from repro.sim.job import Job

_FREE = -1
_DOWN = -2


class Cluster:
    """A pool of ``num_nodes`` identical compute nodes.

    Nodes are interchangeable (no topology) — allocation picks the
    lowest-indexed free nodes, which matches the level of detail of the
    paper's simulator.

    ``sanitize`` activates node-conservation checks after every
    allocate/release (``None`` follows the ``REPRO_SANITIZE`` env var).
    """

    def __init__(self, num_nodes: int, sanitize: bool | None = None) -> None:
        if num_nodes <= 0:
            raise ValueError(f"num_nodes must be positive, got {num_nodes}")
        self.num_nodes = int(num_nodes)
        self._sanitize = sanitize
        #: job id occupying each node; ``-1`` free, ``-2`` down (failed)
        self._job_of = np.full(self.num_nodes, _FREE, dtype=np.int64)
        #: estimated available time of each node (0 when free); for a
        #: down node this is the expected repair time
        self._avail_at = np.zeros(self.num_nodes, dtype=np.float64)
        #: job id -> allocated node indices
        self._alloc: dict[int, np.ndarray] = {}
        #: cached count of free nodes, maintained by every mutation of
        #: ``_job_of`` (``available_nodes`` is read on every scheduler
        #: pass; recounting the array there dominated small-run cost).
        #: The node-conservation sanitizer recomputes used/down counts,
        #: so ``used + free + down == total`` cross-checks this cache.
        self._free_count = self.num_nodes
        #: running node-seconds of *actual* useful work accumulated by
        #: finished jobs, used by utilization accounting.
        self._used_node_seconds = 0.0
        #: node-seconds of partial work destroyed by fault kills
        self._wasted_node_seconds = 0.0
        #: node-seconds of capacity lost to completed down intervals
        self._lost_node_seconds = 0.0
        #: node index -> time it went down (open down intervals)
        self._down_since: dict[int, float] = {}

    @property
    def sanitize_active(self) -> bool:
        """Whether invariant checks run (explicit flag, else env var)."""
        if self._sanitize is not None:
            return self._sanitize
        return _san.sanitizer_enabled()

    # -- queries -------------------------------------------------------------
    @property
    def available_nodes(self) -> int:
        """Number of currently free (up and unoccupied) nodes."""
        return self._free_count

    @property
    def used_nodes(self) -> int:
        """Number of nodes occupied by jobs (``N_used`` in Eq. (1)).

        Down nodes are neither used nor available; without faults this
        equals ``num_nodes - available_nodes`` as before.
        """
        return int(np.count_nonzero(self._job_of >= 0))

    @property
    def down_nodes(self) -> int:
        """Number of currently failed (down) nodes."""
        return int(np.count_nonzero(self._job_of == _DOWN))

    @property
    def up_nodes(self) -> int:
        """Live capacity: nodes not currently down.

        This is the denominator of capacity-relative quantities (reward
        utilization, state normalization) under faults; it equals
        ``num_nodes`` whenever no fault model is active.
        """
        return self.num_nodes - self.down_nodes

    @property
    def down_mask(self) -> np.ndarray:
        """Boolean per-node mask of currently-down nodes (a copy)."""
        return self._job_of == _DOWN

    @property
    def running_job_ids(self) -> list[int]:
        """IDs of all currently running jobs, in allocation order."""
        return list(self._alloc.keys())

    def is_running(self, job_id: int) -> bool:
        """Whether ``job_id`` currently holds an allocation."""
        return job_id in self._alloc

    def nodes_of(self, job_id: int) -> np.ndarray:
        """Node indices allocated to a running job."""
        return self._alloc[job_id].copy()

    def jobs_on(self, nodes: np.ndarray | list[int]) -> list[int]:
        """Distinct job ids occupying any of ``nodes``, ascending."""
        ids = np.unique(self._job_of[np.asarray(nodes, dtype=np.int64)])
        return [int(j) for j in ids if j >= 0]

    def can_fit(self, size: int) -> bool:
        """Whether ``size`` nodes could be allocated right now."""
        return size <= self.available_nodes

    # -- paper state encoding --------------------------------------------------
    def node_state(self, now: float) -> np.ndarray:
        """Per-node ``[N, 2]`` state matrix (paper section III-A).

        Column 0 is the binary availability flag (1 free / 0 busy);
        column 1 is ``estimated_available_time - now`` for busy nodes and
        0 for free nodes.  A down node reads as busy until its expected
        repair time.
        """
        free = self._job_of == _FREE
        state = np.zeros((self.num_nodes, 2), dtype=np.float64)
        state[:, 0] = free.astype(np.float64)
        remaining = self._avail_at - now
        state[~free, 1] = np.maximum(remaining[~free], 0.0)
        return state

    def estimated_release_times(self, now: float) -> np.ndarray:
        """Sorted estimated release times of busy nodes (>= ``now``).

        This is the input to the EASY shadow-time computation: assuming
        every running job occupies its nodes until its walltime estimate
        (and every down node until its expected repair), when does each
        unavailable node come free?
        """
        busy = self._job_of != _FREE
        times = np.maximum(self._avail_at[busy], now)
        times.sort()
        return times

    def shadow_time(self, size: int, now: float) -> float:
        """Earliest time at which ``size`` nodes are expected to be free.

        Uses walltime estimates of running jobs (jobs can finish early,
        in which case the actual availability is sooner).  Returns
        ``now`` when the job already fits.
        """
        if size > self.num_nodes:
            raise ValueError(
                f"job size {size} exceeds cluster size {self.num_nodes}"
            )
        free = self.available_nodes
        if size <= free:
            return now
        releases = self.estimated_release_times(now)
        # After the k-th busy node releases, free + k + 1 nodes are free.
        needed = size - free
        return float(releases[needed - 1])

    def free_nodes_at(self, when: float, now: float) -> int:
        """Expected number of free nodes at time ``when`` (``when >= now``)."""
        releases = self.estimated_release_times(now)
        return self.available_nodes + int(np.searchsorted(releases, when, side="right"))

    def reservation_point(self, size: int, now: float) -> tuple[float, int]:
        """``(shadow_time, free_nodes_at(shadow_time))`` in one pass.

        Equivalent to calling :meth:`shadow_time` then
        :meth:`free_nodes_at` at that shadow, but sorts the estimated
        release times once instead of twice — this pair is computed for
        the queue head on every EASY-backfill scheduler pass.
        """
        if size > self.num_nodes:
            raise ValueError(
                f"job size {size} exceeds cluster size {self.num_nodes}"
            )
        free = self._free_count
        releases = self.estimated_release_times(now)
        if size <= free:
            shadow = now
        else:
            shadow = float(releases[size - free - 1])
        free_at = free + int(np.searchsorted(releases, shadow, side="right"))
        return shadow, free_at

    # -- allocation -------------------------------------------------------------
    def allocate(self, job: Job, now: float) -> np.ndarray:
        """Assign the lowest-indexed free nodes to ``job``.

        Returns the allocated node indices.  Raises if the job does not
        fit or is already running.
        """
        if job.job_id in self._alloc:
            raise RuntimeError(f"job {job.job_id} already allocated")
        free_idx = np.flatnonzero(self._job_of == _FREE)
        if job.size > free_idx.size:
            raise RuntimeError(
                f"job {job.job_id} needs {job.size} nodes, only {free_idx.size} free"
            )
        chosen = free_idx[: job.size]
        self._job_of[chosen] = job.job_id
        self._avail_at[chosen] = now + job.walltime
        self._alloc[job.job_id] = chosen
        self._free_count -= job.size
        if self.sanitize_active:
            _san.check_node_conservation(self, f"allocate(job {job.job_id})")
        return chosen.copy()

    def release(self, job: Job) -> None:
        """Free the nodes held by ``job`` and account its useful work."""
        try:
            nodes = self._alloc.pop(job.job_id)
        except KeyError:
            raise RuntimeError(f"job {job.job_id} is not allocated") from None
        self._job_of[nodes] = _FREE
        self._avail_at[nodes] = 0.0
        self._free_count += len(nodes)
        self._used_node_seconds += job.node_seconds
        if self.sanitize_active:
            _san.check_node_conservation(self, f"release(job {job.job_id})")

    def release_killed(self, job: Job, now: float) -> np.ndarray:
        """Free the nodes of a fault-killed job; its work is wasted.

        Unlike :meth:`release`, the partial execution contributes to
        :attr:`wasted_node_seconds` instead of the useful-work integral.
        Returns the node indices the job held (so the caller can take a
        failed subset down).
        """
        try:
            nodes = self._alloc.pop(job.job_id)
        except KeyError:
            raise RuntimeError(f"job {job.job_id} is not allocated") from None
        self._job_of[nodes] = _FREE
        self._avail_at[nodes] = 0.0
        self._free_count += len(nodes)
        if job.start_time is not None:
            self._wasted_node_seconds += job.size * max(0.0, now - job.start_time)
        if self.sanitize_active:
            _san.check_node_conservation(self, f"release_killed(job {job.job_id})")
        return nodes.copy()

    # -- faults -----------------------------------------------------------------
    def fail_nodes(self, nodes: np.ndarray | list[int], now: float,
                   expected_up_at: "float | np.ndarray") -> None:
        """Take currently-free ``nodes`` down until ``expected_up_at``.

        ``expected_up_at`` is a scalar, or an array giving each node its
        own expected repair time (one failure event can take a whole
        blade down with independent repairs).  Callers must evacuate
        occupying jobs first (the engine kills them via
        :meth:`release_killed`); failing an occupied or already-down
        node is a programming error and raises.
        """
        idx = np.asarray(nodes, dtype=np.int64)
        if idx.size == 0:
            return
        expected_up_at = np.asarray(expected_up_at, dtype=np.float64)
        if np.any(expected_up_at < now):
            raise ValueError(
                f"expected_up_at {expected_up_at} precedes now {now}"
            )
        states = self._job_of[idx]
        if np.any(states != _FREE):
            bad = idx[states != _FREE]
            raise RuntimeError(
                f"cannot fail non-free node(s) {bad.tolist()} at t={now}"
            )
        self._job_of[idx] = _DOWN
        self._avail_at[idx] = expected_up_at
        self._free_count -= int(idx.size)
        for node in idx:
            self._down_since[int(node)] = now
        if self.sanitize_active:
            _san.check_node_conservation(self, f"fail_nodes({idx.tolist()})")

    def repair_nodes(self, nodes: np.ndarray | list[int], now: float) -> None:
        """Bring down ``nodes`` back up, closing their downtime intervals."""
        idx = np.asarray(nodes, dtype=np.int64)
        if idx.size == 0:
            return
        states = self._job_of[idx]
        if np.any(states != _DOWN):
            bad = idx[states != _DOWN]
            raise RuntimeError(
                f"cannot repair node(s) {bad.tolist()} that are not down"
            )
        self._job_of[idx] = _FREE
        self._avail_at[idx] = 0.0
        self._free_count += int(idx.size)
        for node in idx:
            since = self._down_since.pop(int(node))
            self._lost_node_seconds += max(0.0, now - since)
        if self.sanitize_active:
            _san.check_node_conservation(self, f"repair_nodes({idx.tolist()})")

    # -- utilization accounting ----------------------------------------------
    def used_node_seconds(self, running_jobs: dict[int, Job] | None = None,
                          now: float | None = None) -> float:
        """Node-seconds of useful work completed so far.

        If ``running_jobs`` and ``now`` are given, partial work of
        currently running jobs is included.
        """
        total = self._used_node_seconds
        if running_jobs is not None and now is not None:
            for job_id in self._alloc:
                job = running_jobs[job_id]
                assert job.start_time is not None
                total += job.size * max(0.0, min(now, job.start_time + job.runtime)
                                        - job.start_time)
        return total

    @property
    def wasted_node_seconds(self) -> float:
        """Node-seconds of partial work destroyed by fault kills."""
        return self._wasted_node_seconds

    def lost_node_seconds(self, until: float | None = None) -> float:
        """Node-seconds of capacity lost to node downtime so far.

        Completed down intervals are always included; ``until`` extends
        the open intervals of still-down nodes to that time.
        """
        total = self._lost_node_seconds
        if until is not None:
            for since in self._down_since.values():
                total += max(0.0, until - since)
        return total

    def reset(self) -> None:
        """Return the cluster to the all-idle, all-up initial state."""
        self._job_of.fill(_FREE)
        self._avail_at.fill(0.0)
        self._alloc.clear()
        self._free_count = self.num_nodes
        self._used_node_seconds = 0.0
        self._wasted_node_seconds = 0.0
        self._lost_node_seconds = 0.0
        self._down_since.clear()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Cluster(nodes={self.num_nodes}, free={self.available_nodes}, "
            f"running={len(self._alloc)}, down={self.down_nodes})"
        )
