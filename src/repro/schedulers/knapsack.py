"""Optimization baseline: per-instance 0-1 knapsack (paper section IV-A).

At every scheduling instance the scheduler chooses the subset of
waiting jobs that maximizes the immediate scheduling objective subject
to the node-capacity constraint — a 0-1 knapsack problem solved exactly
with dynamic programming.  For a fair comparison the per-job values are
derived from the same objectives as DRAS (Eq. 1 / Eq. 2), see
:func:`repro.core.rewards.job_value`.

This family optimizes the *immediate* objective only; it has no
reservation mechanism and no notion of long-term reward — the two
properties the paper credits for DRAS's advantage.
"""

from __future__ import annotations

import numpy as np

from repro.core.rewards import job_value
from repro.schedulers.base import BaseScheduler
from repro.sim.engine import SchedulingView
from repro.sim.job import Job


def solve_knapsack(weights: list[int], values: list[float], capacity: int) -> list[int]:
    """Exact 0-1 knapsack via dynamic programming.

    Returns the indices of the chosen items.  ``weights`` must be
    positive integers.  The DP table over capacity is vectorized with
    NumPy: one ``maximum`` over a shifted view per item.
    """
    n = len(weights)
    if n != len(values):
        raise ValueError("weights and values must have equal length")
    if capacity < 0:
        raise ValueError(f"capacity must be >= 0, got {capacity}")
    if any(w <= 0 for w in weights):
        raise ValueError("weights must be positive")
    if n == 0 or capacity == 0:
        return []

    dp = np.zeros(capacity + 1, dtype=np.float64)
    take = np.zeros((n, capacity + 1), dtype=bool)
    for i, (w, v) in enumerate(zip(weights, values)):
        if w > capacity:
            continue
        candidate = dp[:-w] + v
        improved = candidate > dp[w:]
        dp[w:] = np.where(improved, candidate, dp[w:])
        take[i, w:] = improved

    chosen: list[int] = []
    c = capacity
    for i in range(n - 1, -1, -1):
        if take[i, c]:
            chosen.append(i)
            c -= weights[i]
    chosen.reverse()
    return chosen


class KnapsackOptimization(BaseScheduler):
    """Immediate-objective optimizer using exact 0-1 knapsack.

    Parameters
    ----------
    objective:
        ``"capability"`` (Eq. 1 values) or ``"capacity"`` (Eq. 2 values).
    window:
        Only the ``window`` oldest waiting jobs are considered per
        instance, bounding the DP cost on deep queues.
    """

    def __init__(self, objective: str = "capability", window: int = 100) -> None:
        if window <= 0:
            raise ValueError(f"window must be positive, got {window}")
        self.objective = objective
        self.window = window
        self.name = "Optimization"

    def schedule(self, view: SchedulingView) -> None:
        capacity = view.free_nodes
        if capacity <= 0:
            return
        waiting = view.waiting()[: self.window]
        candidates: list[Job] = [j for j in waiting if j.size <= capacity]
        if not candidates:
            return
        values = [
            job_value(j, self.objective, waiting, view.cluster, view.now)
            for j in candidates
        ]
        # Strictly positive values so that filling capacity is always
        # preferred over idling (the DP would otherwise ignore 0-value jobs).
        floor = 1e-9
        values = [max(v, floor) for v in values]
        weights = [j.size for j in candidates]
        chosen = solve_knapsack(weights, values, capacity)
        for idx in chosen:
            view.start(candidates[idx])
