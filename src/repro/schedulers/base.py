"""Common scaffolding for scheduling policies."""

from __future__ import annotations

from repro.obs.metrics import MetricsRegistry
from repro.sim.engine import SchedulingView


class BaseScheduler:
    """Base class for all policies.

    Subclasses implement :meth:`schedule`; the engine calls it once per
    scheduling instance with a :class:`~repro.sim.engine.SchedulingView`
    through which the policy takes its actions.

    Every policy exposes a lazily-created :class:`MetricsRegistry` as
    :attr:`metrics`.  At the start of each run the engine aliases its
    own ``schedule_s`` timer and ``instances`` counter into this
    registry (so after a run they reflect the most recent engine);
    subclasses may record their own instruments (e.g. backfill hit
    rates) into the same registry.
    """

    #: human-readable policy name, used in experiment reports
    name: str = "base"

    @property
    def metrics(self) -> MetricsRegistry:
        """Per-policy metrics registry (created on first access)."""
        registry = getattr(self, "_metrics", None)
        if registry is None:
            registry = MetricsRegistry()
            self._metrics = registry
        return registry

    def reset_metrics(self) -> None:
        """Zero this policy's instruments in place (names stay bound).

        Call between runs or training phases when per-phase numbers
        must not leak into the next report.  Aliased engine instruments
        (``schedule_s``, ``instances``) are zeroed too; the engine that
        shared them sees the same zeroed objects.
        """
        registry = getattr(self, "_metrics", None)
        if registry is not None:
            registry.reset_values()

    def schedule(self, view: SchedulingView) -> None:
        """Take scheduling actions for one instance via ``view``.

        Determinism contract (statically enforced by the RPR6xx taint
        rules): any randomness here must come from a generator derived
        from an explicit seed (RPR601), and no code reachable from
        ``schedule`` may consume the fault injector's private RNG
        (RPR602) — the failure stream stays policy-independent.
        """
        raise NotImplementedError

    # Optional lifecycle hooks --------------------------------------------
    def on_simulation_start(self, engine) -> None:  # noqa: ANN001
        """Called by the engine before the first event is processed."""

    def on_simulation_end(self, engine) -> None:  # noqa: ANN001
        """Called by the engine after the last event is processed."""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(name={self.name!r})"
