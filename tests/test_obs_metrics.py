"""Metrics instruments and the registries exposed by engine/trainer/schedulers."""

import numpy as np
import pytest

from repro.obs.metrics import Counter, Gauge, MetricsRegistry, Timer
from repro.schedulers.fcfs import FCFSEasy
from repro.sim.cluster import Cluster
from repro.sim.engine import Engine
from repro.workload.models import ThetaModel


class TestInstruments:
    def test_counter(self):
        c = Counter()
        c.inc()
        c.inc(4)
        assert c.value == 5

    def test_gauge_tracks_extremes(self):
        g = Gauge()
        for v in (3.0, -1.0, 7.0):
            g.set(v)
        assert (g.value, g.min, g.max, g.samples) == (7.0, -1.0, 7.0, 3)

    def test_timer_mean_and_ema(self):
        t = Timer(ema_alpha=0.5)
        t.observe(2.0)
        assert t.ema == 2.0  # first sample seeds the EMA
        t.observe(4.0)
        assert t.ema == pytest.approx(3.0)
        assert t.mean == pytest.approx(3.0)
        assert t.last == 4.0 and t.count == 2

    def test_timer_context_manager(self):
        t = Timer()
        with t.time():
            pass
        assert t.count == 1 and t.total >= 0.0

    def test_timer_alpha_validated(self):
        with pytest.raises(ValueError):
            Timer(ema_alpha=0.0)


class TestRegistry:
    def test_get_or_create_returns_same_object(self):
        reg = MetricsRegistry()
        assert reg.counter("a") is reg.counter("a")

    def test_kind_mismatch_rejected(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(TypeError, match="Counter"):
            reg.gauge("x")

    def test_snapshot_shapes(self):
        reg = MetricsRegistry()
        reg.counter("c").inc(2)
        reg.gauge("g").set(1.5)
        reg.timer("t").observe(0.25)
        snap = reg.snapshot()
        assert snap["c"] == 2
        assert snap["g"]["value"] == 1.5 and snap["g"]["samples"] == 1
        assert snap["t"]["count"] == 1 and snap["t"]["total_s"] == 0.25

    def test_unsampled_gauge_has_null_extremes(self):
        reg = MetricsRegistry()
        reg.gauge("g")
        snap = reg.snapshot()
        assert snap["g"]["min"] is None and snap["g"]["max"] is None

    def test_reset(self):
        reg = MetricsRegistry()
        reg.counter("c").inc()
        reg.reset()
        assert reg.names() == []


class TestWiredRegistries:
    def _run(self, n_jobs=80, nodes=32):
        model = ThetaModel.scaled(nodes)
        jobs = model.generate(n_jobs, np.random.default_rng(0))
        scheduler = FCFSEasy()
        engine = Engine(Cluster(nodes), scheduler, jobs)
        result = engine.run()
        return engine, scheduler, result

    def test_engine_metrics_populated(self):
        engine, _, result = self._run()
        snap = engine.metrics.snapshot()
        assert snap["engine.events_submit"] == len(result.jobs)
        assert snap["engine.events_finish"] == len(result.finished_jobs)
        assert snap["engine.jobs_started"] == len(result.finished_jobs)
        assert snap["engine.instances"] == result.num_instances
        assert snap["engine.schedule_s"]["count"] == result.num_instances

    def test_scheduler_metrics_populated_by_engine(self):
        _, scheduler, result = self._run()
        snap = scheduler.metrics.snapshot()
        assert snap["instances"] == result.num_instances
        assert snap["schedule_s"]["count"] == result.num_instances

    def test_trainer_metrics(self):
        from repro.core.config import DRASConfig
        from repro.core.dras_pg import DRASPG
        from repro.rl.trainer import Trainer
        from tests.conftest import make_job

        config = DRASConfig(num_nodes=16, window=4, hidden1=16, hidden2=8,
                            seed=0, objective="capability", time_scale=1000.0)
        agent = DRASPG(config)
        jobs = [make_job(size=4, walltime=50.0, submit=float(i * 10))
                for i in range(8)]
        trainer = Trainer(agent, 16, validation_jobs=jobs[:4])
        trainer.run_episode(jobs)
        trainer.validate()
        snap = trainer.metrics.snapshot()
        assert snap["train.episodes"] == 1
        assert snap["train.validations"] == 1
        assert snap["train.episode_s"]["count"] == 1


class TestResetSemantics:
    def test_reset_values_keeps_bindings(self):
        reg = MetricsRegistry()
        counter = reg.counter("c")
        gauge = reg.gauge("g")
        timer = reg.timer("t")
        counter.inc(5)
        gauge.set(2.0)
        timer.observe(0.5)
        reg.reset_values()
        # names stay bound to the SAME objects, now zeroed
        assert reg.counter("c") is counter and counter.value == 0
        assert reg.gauge("g") is gauge and gauge.samples == 0
        assert reg.timer("t") is timer and timer.count == 0
        # cached references keep recording after the reset
        counter.inc()
        assert reg.snapshot()["c"] == 1

    def test_reset_values_zeroes_aliased_instrument_once(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        shared = a.timer("schedule_s")
        b.alias("schedule_s", shared)
        shared.observe(1.0)
        b.reset_values()
        # both registries see the same zeroed object
        assert a.timer("schedule_s").count == 0
        assert b.snapshot()["schedule_s"]["count"] == 0

    def test_alias_rejects_non_instrument(self):
        with pytest.raises(TypeError, match="not an instrument"):
            MetricsRegistry().alias("x", object())

    def test_scheduler_reset_between_runs(self):
        """reset_metrics between runs: counts reflect the second run only,
        and the engine alias survives because instruments are zeroed in
        place rather than dropped."""
        model = ThetaModel.scaled(32)
        scheduler = FCFSEasy()
        for expected_runs in (1, 2):
            jobs = model.generate(60, np.random.default_rng(expected_runs))
            engine = Engine(Cluster(32), scheduler, jobs)
            result = engine.run()
            snap = scheduler.metrics.snapshot()
            assert snap["instances"] == result.num_instances
            scheduler.reset_metrics()
        assert scheduler.metrics.snapshot()["instances"] == 0

    def test_reset_metrics_before_first_access_is_noop(self):
        scheduler = FCFSEasy()
        scheduler.__dict__.pop("_metrics", None)
        scheduler.reset_metrics()  # must not create the registry
        assert getattr(scheduler, "_metrics", None) is None

    def test_same_engine_rerun_accumulates_until_reset(self):
        model = ThetaModel.scaled(32)
        scheduler = FCFSEasy()
        jobs = model.generate(40, np.random.default_rng(0))
        engine = Engine(Cluster(32), scheduler, jobs)
        result = engine.run()
        first = engine.metrics.snapshot()["engine.instances"]
        assert first == result.num_instances
        engine.metrics.reset_values()
        assert engine.metrics.snapshot()["engine.instances"] == 0
        # the engine's cached instrument refs still work after zeroing
        assert scheduler.metrics.snapshot()["instances"] == 0
