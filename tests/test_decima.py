"""Unit tests for the Decima-PG baseline (flat agent, no reservations)."""

import numpy as np
import pytest

from repro.core.config import DRASConfig
from repro.core.decima import DecimaPG
from repro.sim.engine import run_simulation
from repro.sim.job import ExecMode, JobState
from tests.conftest import make_job


def small_config(**overrides):
    base = dict(num_nodes=8, window=3, hidden1=12, hidden2=6, seed=0,
                objective="capability", time_scale=100.0)
    base.update(overrides)
    return DRASConfig(**base)


class TestBehaviour:
    def test_never_reserves(self):
        agent = DecimaPG(small_config())
        jobs = [make_job(size=8, walltime=20.0, submit=float(i)) for i in range(4)]
        result = run_simulation(8, agent, jobs)
        assert all(j.mode is ExecMode.READY for j in result.jobs)
        assert all(not j.ever_reserved for j in result.jobs)

    def test_all_jobs_finish(self):
        agent = DecimaPG(small_config())
        jobs = [make_job(size=s, walltime=30.0, submit=float(i * 4))
                for i, s in enumerate((1, 2, 8, 4, 2, 1))]
        result = run_simulation(8, agent, jobs)
        assert all(j.state is JobState.FINISHED for j in result.jobs)

    def test_skips_unrunnable_jobs(self):
        """Unlike DRAS, a too-large head job is skipped, not reserved."""
        agent = DecimaPG(small_config())
        blocker = make_job(size=6, walltime=100.0, submit=0.0)
        big = make_job(size=8, walltime=10.0, submit=1.0)
        small = make_job(size=2, walltime=10.0, submit=2.0)
        run_simulation(8, agent, [blocker, big, small])
        # small runs ahead of big even though big arrived earlier
        assert small.start_time < big.start_time

    def test_large_jobs_can_starve(self):
        """A stream of small jobs overtakes the whole-system job."""
        agent = DecimaPG(small_config())
        smalls = [make_job(size=4, walltime=100.0, submit=float(i * 50))
                  for i in range(8)]
        big = make_job(size=8, walltime=10.0, submit=1.0)
        run_simulation(8, agent, smalls + [big])
        assert big.start_time > smalls[-1].submit_time

    def test_updates_during_training(self):
        agent = DecimaPG(small_config(update_every=2))
        jobs = [make_job(size=2, walltime=20.0, submit=float(i * 30))
                for i in range(12)]
        run_simulation(8, agent, jobs)
        assert agent.updates_done >= 2

    def test_frozen_eval(self):
        agent = DecimaPG(small_config())
        agent.eval(online_learning=False)
        before = {k: v.copy() for k, v in agent.state_dict().items()}
        jobs = [make_job(size=2, walltime=20.0, submit=float(i)) for i in range(8)]
        run_simulation(8, agent, jobs)
        after = agent.state_dict()
        assert all(np.allclose(before[k], after[k]) for k in before)

    def test_state_dict_roundtrip(self):
        a = DecimaPG(small_config(seed=1))
        b = DecimaPG(small_config(seed=2))
        b.load_state_dict(a.state_dict())
        ka = a.state_dict()
        kb = b.state_dict()
        assert all(np.allclose(ka[k], kb[k]) for k in ka)

    def test_instance_rewards_tracked(self):
        agent = DecimaPG(small_config())
        jobs = [make_job(size=2, walltime=20.0, submit=float(i)) for i in range(4)]
        result = run_simulation(8, agent, jobs)
        assert len(agent.instance_rewards) == result.num_instances
