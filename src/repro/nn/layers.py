"""Layers with explicit forward/backward passes.

Each layer caches what its backward pass needs during ``forward`` and
exposes its trainable tensors as :class:`Parameter` objects, which an
optimizer updates in place.  Shapes follow the DRAS conventions:
network input is ``[B, rows, 2]``; after the 1x2 convolution the
representation is ``[B, rows]``; dense layers map ``[B, in] -> [B, out]``.
"""

from __future__ import annotations

import numpy as np


class Parameter:
    """A trainable tensor with its gradient accumulator."""

    __slots__ = ("name", "value", "grad")

    def __init__(self, name: str, value: np.ndarray) -> None:
        self.name = name
        self.value = np.asarray(value, dtype=np.float64)
        self.grad = np.zeros_like(self.value)

    @property
    def size(self) -> int:
        """Number of scalar elements in the tensor."""
        return self.value.size

    def zero_grad(self) -> None:
        """Reset the gradient accumulator to zero in place."""
        self.grad.fill(0.0)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Parameter({self.name!r}, shape={self.value.shape})"


class Layer:
    """Base layer: ``forward`` caches, ``backward`` returns input grads."""

    def forward(self, x: np.ndarray) -> np.ndarray:
        """Compute the layer output, caching what backward needs."""
        raise NotImplementedError

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        """Accumulate parameter grads; return grads w.r.t. the input."""
        raise NotImplementedError

    def parameters(self) -> list[Parameter]:
        """Trainable tensors of this layer (empty for activations)."""
        return []


class Conv1x2(Layer):
    """The paper's convolution layer: one 1x2 filter applied per row.

    For input ``x`` of shape ``[B, rows, 2]`` the output is
    ``y[b, r] = w0 * x[b, r, 0] + w1 * x[b, r, 1] + bias`` — one neuron
    per row, extracting the job/node status information of that row
    (§III-B).  Contributes 3 trainable parameters.
    """

    def __init__(self, rng: np.random.Generator | None = None) -> None:
        # seeded fallback: unseeded default_rng() would make two
        # identically-configured networks initialize differently
        rng = rng or np.random.default_rng(0)
        # He-style init for a fan-in of 2
        w = rng.normal(0.0, np.sqrt(2.0 / 2.0), size=2)
        self.weight = Parameter("conv.weight", w)
        self.bias = Parameter("conv.bias", np.zeros(1))
        self._x: np.ndarray | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        """Apply the 1x2 filter: ``[B, rows, 2] -> [B, rows]``."""
        if x.ndim != 3 or x.shape[-1] != 2:
            raise ValueError(f"Conv1x2 expects [B, rows, 2], got {x.shape}")
        self._x = x
        y = x @ self.weight.value
        y += self.bias.value[0]
        return y

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        """Accumulate filter/bias grads; returns ``[B, rows, 2]`` input grads."""
        if self._x is None:
            raise RuntimeError("backward called before forward")
        x = self._x
        # grad_out: [B, rows]
        self.weight.grad += np.einsum("br,brk->k", grad_out, x)
        self.bias.grad += np.array([grad_out.sum()])
        return grad_out[..., None] * self.weight.value

    def parameters(self) -> list[Parameter]:
        """The 1x2 filter weight and its bias (3 scalars total)."""
        return [self.weight, self.bias]


class Dense(Layer):
    """Fully-connected layer ``[B, in] -> [B, out]``.

    ``bias=False`` for the two hidden layers reproduces the paper's
    Table III parameter counts (DESIGN.md §4).
    """

    def __init__(
        self,
        in_features: int,
        out_features: int,
        bias: bool = True,
        rng: np.random.Generator | None = None,
        name: str = "dense",
    ) -> None:
        if in_features <= 0 or out_features <= 0:
            raise ValueError("in_features and out_features must be positive")
        rng = rng or np.random.default_rng(0)
        scale = np.sqrt(2.0 / in_features)  # He init for leaky-ReLU nets
        self.weight = Parameter(
            f"{name}.weight", rng.normal(0.0, scale, size=(in_features, out_features))
        )
        self.bias = Parameter(f"{name}.bias", np.zeros(out_features)) if bias else None
        self._x: np.ndarray | None = None
        # scratch for the weight-gradient matmul; allocated lazily on
        # the first backward so forward-only (inference) networks never
        # pay for it.  Writing the matmul into a reused buffer instead
        # of a fresh temporary keeps large layers (>1 MB) off the
        # allocator's mmap path in the training loop.
        self._gw_scratch: np.ndarray | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        """One matmul for the whole batch: ``[B, in] -> [B, out]``."""
        if x.ndim != 2 or x.shape[1] != self.weight.value.shape[0]:
            raise ValueError(
                f"Dense expects [B, {self.weight.value.shape[0]}], got {x.shape}"
            )
        self._x = x
        y = x @ self.weight.value
        if self.bias is not None:
            y += self.bias.value
        return y

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        """Accumulate batch-summed grads; returns ``[B, in]`` input grads."""
        if self._x is None:
            raise RuntimeError("backward called before forward")
        if self._gw_scratch is None:
            self._gw_scratch = np.empty_like(self.weight.value)
        np.matmul(self._x.T, grad_out, out=self._gw_scratch)
        self.weight.grad += self._gw_scratch
        if self.bias is not None:
            self.bias.grad += grad_out.sum(axis=0)
        return grad_out @ self.weight.value.T

    def parameters(self) -> list[Parameter]:
        """The weight matrix, plus the bias vector when present."""
        params = [self.weight]
        if self.bias is not None:
            params.append(self.bias)
        return params


class LeakyReLU(Layer):
    """Leaky rectifier activation (§III-B).

    Forward and backward are expressed as one elementwise multiply by a
    cached slope factor (1 where ``x > 0``, ``alpha`` elsewhere) — the
    same values as the branchy ``where(x > 0, x, alpha*x)`` form
    (multiplying by 1.0 is exact in IEEE 754), in fewer passes over the
    batch.
    """

    def __init__(self, alpha: float = 0.01) -> None:
        if alpha < 0:
            raise ValueError("alpha must be >= 0")
        self.alpha = alpha
        self._factor: np.ndarray | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        """Elementwise ``max(x, alpha*x)`` over any batched shape."""
        self._factor = np.where(x > 0, 1.0, self.alpha)
        return x * self._factor

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        """Scale gradients by the cached slope factor."""
        if self._factor is None:
            raise RuntimeError("backward called before forward")
        return grad_out * self._factor
