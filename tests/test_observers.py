"""Unit tests for the reusable engine observers."""

import numpy as np
import pytest

from repro.schedulers import FCFSEasy
from repro.sim.engine import run_simulation
from repro.sim.observers import EventLog, QueueDepthRecorder, UtilizationTimeline
from tests.conftest import make_job


def _jobs():
    return [make_job(size=4, walltime=100.0, submit=float(i * 10)) for i in range(4)]


class TestQueueDepthRecorder:
    def test_samples_every_instance(self):
        rec = QueueDepthRecorder()
        result = run_simulation(4, FCFSEasy(), _jobs(), observers=[rec])
        assert len(rec.depths) == result.num_instances

    def test_depth_grows_under_backlog(self):
        rec = QueueDepthRecorder()
        run_simulation(4, FCFSEasy(), _jobs(), observers=[rec])
        # four whole-system jobs arriving within 30 s: depth reaches 3
        assert rec.max_depth == 3

    def test_empty_run(self):
        rec = QueueDepthRecorder()
        assert rec.max_depth == 0
        assert rec.mean_depth() == 0.0

    def test_as_arrays(self):
        rec = QueueDepthRecorder()
        run_simulation(4, FCFSEasy(), _jobs(), observers=[rec])
        times, depths = rec.as_arrays()
        assert times.shape == depths.shape
        assert np.all(np.diff(times) >= 0)

    def test_held_jobs_counted_separately(self):
        rec = QueueDepthRecorder()
        parent = make_job(size=1, walltime=50.0, submit=0.0, job_id=1)
        child = make_job(size=1, walltime=10.0, submit=0.0, deps=(1,), job_id=2)
        run_simulation(4, FCFSEasy(), [parent, child], observers=[rec])
        assert max(rec.held) == 1


class TestUtilizationTimeline:
    def test_validation(self):
        with pytest.raises(ValueError):
            UtilizationTimeline(0)

    def test_exact_utilization_single_job(self):
        tl = UtilizationTimeline(4)
        job = make_job(size=2, walltime=100.0)
        run_simulation(4, FCFSEasy(), [job], observers=[tl])
        # 2 of 4 nodes busy over [0, 100]
        assert tl.utilization_between(0.0, 100.0) == pytest.approx(0.5)

    def test_utilization_sub_interval(self):
        tl = UtilizationTimeline(4)
        job = make_job(size=4, walltime=50.0)
        run_simulation(4, FCFSEasy(), [job], observers=[tl])
        assert tl.utilization_between(0.0, 50.0) == pytest.approx(1.0)
        assert tl.utilization_between(50.0, 100.0) == pytest.approx(0.0)
        assert tl.utilization_between(0.0, 100.0) == pytest.approx(0.5)

    def test_matches_job_accounting(self):
        tl = UtilizationTimeline(4)
        jobs = _jobs()
        result = run_simulation(4, FCFSEasy(), jobs, observers=[tl])
        expected = sum(j.node_seconds for j in jobs) / (4 * result.makespan)
        assert tl.utilization_between(0.0, result.makespan) == pytest.approx(expected)

    def test_interval_validation(self):
        tl = UtilizationTimeline(4)
        with pytest.raises(ValueError):
            tl.utilization_between(10.0, 10.0)

    def test_steps_monotone(self):
        tl = UtilizationTimeline(4)
        run_simulation(4, FCFSEasy(), _jobs(), observers=[tl])
        times, used = tl.steps()
        assert np.all(np.diff(times) > 0)
        assert used[-1] == 0  # all jobs done


class TestEventLog:
    def test_start_finish_pairs(self):
        log = EventLog()
        jobs = _jobs()
        run_simulation(4, FCFSEasy(), jobs, observers=[log])
        assert len(log.starts()) == 4
        assert len(log.finishes()) == 4
        started = {e.job_id for e in log.starts()}
        assert started == {j.job_id for j in jobs}

    def test_modes_recorded(self):
        log = EventLog()
        run_simulation(4, FCFSEasy(), _jobs(), observers=[log])
        modes = {e.mode for e in log.starts()}
        assert "ready" in modes or "reserved" in modes

    def test_chronological(self):
        log = EventLog()
        run_simulation(4, FCFSEasy(), _jobs(), observers=[log])
        times = [e.time for e in log.events]
        assert times == sorted(times)
