"""Crash-safe training: checkpoint, SIGKILL, resume, same result.

The headline property (ISSUE 5): a training run SIGKILLed mid-flight
and resumed from its latest checkpoint reaches exactly the same final
validation score as an uninterrupted run with the same seed.  The
subprocess test below kills the trainer with a real ``SIGKILL`` (no
cleanup handlers run, exactly like the OOM killer) immediately after a
checkpoint write, then resumes in a fresh process.
"""

import json
import os
import signal
import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest

from repro.core.config import DRASConfig
from repro.core.dras_pg import DRASPG
from repro.core.persistence import CheckpointError
from repro.rl.checkpoint import (
    episode_stats_from_json,
    load_checkpoint,
    save_checkpoint,
)
from repro.rl.trainer import Trainer, TrainingHistory
from repro.sim.faults import FaultConfig
from repro.workload import ThetaModel

FAULTS = FaultConfig(mtbf=8000.0, mttr=1200.0, seed=5)


def small_setup(seed=3, episodes=6, jobs=30, nodes=32):
    cfg = DRASConfig.scaled(nodes, objective="capability", window=6,
                            time_scale=ThetaModel.MAX_RUNTIME, seed=seed)
    model = ThetaModel.scaled(nodes)
    rng = np.random.default_rng(seed)
    jobsets = [("phase", model.generate(jobs, rng)) for _ in range(episodes)]
    validation = model.generate(jobs, rng)
    return cfg, jobsets, validation


class TestInProcessResume:
    def test_resumed_run_matches_uninterrupted(self, tmp_path):
        cfg, jobsets, validation = small_setup()
        ckpt = tmp_path / "run.ckpt.npz"

        full = Trainer(DRASPG(cfg), 32, validation_jobs=validation,
                       faults=FAULTS).train(list(jobsets))

        half = Trainer(DRASPG(cfg), 32, validation_jobs=validation,
                       faults=FAULTS, checkpoint_path=ckpt)
        half.train(list(jobsets[:3]))

        loaded = load_checkpoint(ckpt)
        assert loaded.episodes_done == 3
        assert loaded.faults == FAULTS
        history = TrainingHistory(
            episodes=episode_stats_from_json(loaded.episodes)
        )
        resumed = Trainer(loaded.agent, 32, validation_jobs=validation,
                          faults=loaded.faults).train(list(jobsets),
                                                      history=history)

        assert [e.validation_reward for e in resumed.episodes] \
            == [e.validation_reward for e in full.episodes]
        assert [e.train_reward for e in resumed.episodes] \
            == [e.train_reward for e in full.episodes]

    def test_rng_stream_restored_exactly(self, tmp_path):
        cfg, jobsets, validation = small_setup()
        trainer = Trainer(DRASPG(cfg), 32, validation_jobs=validation)
        trainer.train(list(jobsets[:2]))
        ckpt = tmp_path / "c.npz"
        save_checkpoint(ckpt, trainer.agent, episodes=[])
        expected = trainer.agent.rng.random(8).tolist()
        restored = load_checkpoint(ckpt)
        assert restored.agent.rng.random(8).tolist() == expected

    def test_history_longer_than_jobsets_rejected(self):
        cfg, jobsets, validation = small_setup(episodes=2)
        trainer = Trainer(DRASPG(cfg), 32, validation_jobs=validation)
        done = trainer.train(list(jobsets))
        with pytest.raises(ValueError, match="episodes"):
            trainer.train(list(jobsets[:1]), history=done)

    def test_checkpoint_every_skips_intermediate_writes(self, tmp_path):
        cfg, jobsets, validation = small_setup(episodes=3)
        ckpt = tmp_path / "c.npz"
        trainer = Trainer(DRASPG(cfg), 32, validation_jobs=validation,
                          checkpoint_path=ckpt, checkpoint_every=2)
        trainer.train(list(jobsets))
        # written after episodes 2 (index 1); episode 3 is not a multiple
        loaded = load_checkpoint(ckpt)
        assert loaded.episodes_done == 2

    def test_truncated_training_checkpoint_fails_loudly(self, tmp_path):
        cfg, _, _ = small_setup(episodes=1)
        ckpt = tmp_path / "c.npz"
        save_checkpoint(ckpt, DRASPG(cfg), episodes=[])
        blob = ckpt.read_bytes()
        ckpt.write_bytes(blob[: len(blob) // 2])
        with pytest.raises(CheckpointError):
            load_checkpoint(ckpt)


_WORKER = '''
import dataclasses
import os
import signal
import sys

import numpy as np

sys.path.insert(0, {src!r})

from repro.core.config import DRASConfig
from repro.core.dras_pg import DRASPG
from repro.rl.checkpoint import episode_stats_from_json, load_checkpoint
from repro.rl.telemetry import TelemetryWriter
from repro.rl.trainer import Trainer, TrainingHistory
from repro.sim.faults import FaultConfig
from repro.workload import ThetaModel

SEED, EPISODES, JOBS, NODES = 3, 6, 30, 32
FAULTS = FaultConfig(mtbf=8000.0, mttr=1200.0, seed=5)


def setup():
    cfg = DRASConfig.scaled(NODES, objective="capability", window=6,
                            time_scale=ThetaModel.MAX_RUNTIME, seed=SEED)
    model = ThetaModel.scaled(NODES)
    rng = np.random.default_rng(SEED)
    jobsets = [("phase", model.generate(JOBS, rng)) for _ in range(EPISODES)]
    validation = model.generate(JOBS, rng)
    return cfg, jobsets, validation


class KillAfter(Trainer):
    """SIGKILLs its own process right after the Nth checkpoint write."""

    kill_after = 3

    def _write_checkpoint(self, history):
        super()._write_checkpoint(history)
        if len(history.episodes) >= self.kill_after:
            os.kill(os.getpid(), signal.SIGKILL)


def main():
    mode, ckpt, telemetry, out = sys.argv[1:5]
    cfg, jobsets, validation = setup()
    if mode == "full":
        trainer = Trainer(DRASPG(cfg), NODES, validation_jobs=validation,
                          faults=FAULTS, telemetry=telemetry)
        history = trainer.train(jobsets)
    elif mode == "victim":
        trainer = KillAfter(DRASPG(cfg), NODES, validation_jobs=validation,
                            faults=FAULTS, telemetry=telemetry,
                            checkpoint_path=ckpt)
        trainer.train(jobsets)  # never returns: SIGKILLed mid-train
        raise SystemExit("victim was not killed")
    else:  # resume
        loaded = load_checkpoint(ckpt)
        history = TrainingHistory(
            episodes=episode_stats_from_json(loaded.episodes)
        )
        writer = TelemetryWriter(telemetry,
                                 resume_at=loaded.telemetry_offset)
        trainer = Trainer(loaded.agent, NODES, validation_jobs=validation,
                          faults=loaded.faults, telemetry=writer,
                          checkpoint_path=ckpt)
        history = trainer.train(jobsets, history=history)
    if trainer.telemetry is not None:
        trainer.telemetry.close()
    with open(out, "w") as fh:
        fh.write(repr([e.validation_reward for e in history.episodes]))


main()
'''


class TestSigkillResume:
    @pytest.fixture(scope="class")
    def worker(self, tmp_path_factory):
        root = tmp_path_factory.mktemp("sigkill")
        src = str(Path(__file__).resolve().parent.parent / "src")
        script = root / "worker.py"
        script.write_text(_WORKER.format(src=src))
        return script

    def _run(self, script, mode, ckpt, telemetry, out, check=True):
        proc = subprocess.run(
            [sys.executable, str(script), mode, str(ckpt), str(telemetry),
             str(out)],
            capture_output=True, text=True, timeout=600,
        )
        if check and proc.returncode != 0:
            raise AssertionError(
                f"{mode} run failed rc={proc.returncode}:\n{proc.stderr}"
            )
        return proc

    def test_sigkilled_run_resumes_to_same_score(self, worker, tmp_path):
        ckpt = tmp_path / "run.ckpt.npz"
        out_full = tmp_path / "full.txt"
        out_resumed = tmp_path / "resumed.txt"

        self._run(worker, "full", ckpt, tmp_path / "full.jsonl", out_full)

        victim = self._run(worker, "victim", ckpt,
                           tmp_path / "t.jsonl", tmp_path / "unused.txt",
                           check=False)
        assert victim.returncode == -signal.SIGKILL, victim.stderr
        assert ckpt.exists()
        assert not (tmp_path / "unused.txt").exists()

        self._run(worker, "resume", ckpt, tmp_path / "t.jsonl", out_resumed)

        assert out_resumed.read_text() == out_full.read_text()

    def test_resumed_telemetry_has_no_duplicate_episodes(self, worker,
                                                         tmp_path):
        ckpt = tmp_path / "run.ckpt.npz"
        telemetry = tmp_path / "t.jsonl"
        self._run(worker, "victim", ckpt, telemetry, tmp_path / "u.txt",
                  check=False)
        self._run(worker, "resume", ckpt, telemetry, tmp_path / "out.txt")

        records = [json.loads(line)
                   for line in telemetry.read_text().splitlines()]
        metas = [r for r in records if r.get("type") == "meta"]
        episodes = [r["episode"] for r in records
                    if r.get("type") == "episode"]
        assert len(metas) == 1
        assert episodes == sorted(set(episodes))
        assert episodes[-1] == 5  # all six episodes present exactly once
