"""Unit tests for EASY-backfilling machinery."""

import pytest

from repro.sim.backfill import BackfillPlanner, Reservation
from repro.sim.cluster import Cluster
from tests.conftest import make_job


@pytest.fixture
def loaded_cluster():
    """8 nodes: 4 busy until t=100, 2 busy until t=300, 2 free."""
    cluster = Cluster(8)
    cluster.allocate(make_job(size=4, walltime=100.0), now=0.0)
    cluster.allocate(make_job(size=2, walltime=300.0), now=0.0)
    return cluster


class TestReserve:
    def test_reservation_fields(self, loaded_cluster):
        planner = BackfillPlanner(loaded_cluster)
        big = make_job(size=6)
        res = planner.reserve(big, now=0.0)
        assert res.job_id == big.job_id
        assert res.size == 6
        # 2 free + 4 released at t=100 -> shadow at 100
        assert res.shadow_time == 100.0
        # at t=100: 6 nodes free, reserved takes 6 -> 0 extra
        assert res.extra_nodes == 0

    def test_extra_nodes_positive(self, loaded_cluster):
        planner = BackfillPlanner(loaded_cluster)
        res = planner.reserve(make_job(size=4), now=0.0)
        assert res.shadow_time == 100.0
        assert res.extra_nodes == 2  # 6 free at shadow, 4 reserved


class TestAllows:
    def test_short_job_fits_before_shadow(self):
        res = Reservation(job_id=1, size=6, shadow_time=100.0, extra_nodes=0)
        short = make_job(size=2, walltime=50.0)
        assert res.allows(short, now=0.0, free_nodes=2)

    def test_long_job_blocked_without_extra(self):
        res = Reservation(job_id=1, size=6, shadow_time=100.0, extra_nodes=0)
        long_job = make_job(size=2, walltime=500.0)
        assert not res.allows(long_job, now=0.0, free_nodes=2)

    def test_long_job_allowed_on_extra_nodes(self):
        res = Reservation(job_id=1, size=6, shadow_time=100.0, extra_nodes=2)
        long_job = make_job(size=2, walltime=500.0)
        assert res.allows(long_job, now=0.0, free_nodes=2)

    def test_too_wide_for_extra(self):
        res = Reservation(job_id=1, size=6, shadow_time=100.0, extra_nodes=1)
        long_job = make_job(size=2, walltime=500.0)
        assert not res.allows(long_job, now=0.0, free_nodes=2)

    def test_must_fit_free_nodes(self):
        res = Reservation(job_id=1, size=6, shadow_time=100.0, extra_nodes=8)
        job = make_job(size=3, walltime=10.0)
        assert not res.allows(job, now=0.0, free_nodes=2)

    def test_exact_boundary_allowed(self):
        res = Reservation(job_id=1, size=6, shadow_time=100.0, extra_nodes=0)
        job = make_job(size=1, walltime=100.0)  # ends exactly at shadow
        assert res.allows(job, now=0.0, free_nodes=1)


class TestCandidates:
    def test_order_preserved_and_reserved_excluded(self, loaded_cluster):
        planner = BackfillPlanner(loaded_cluster)
        big = make_job(size=6)
        res = planner.reserve(big, now=0.0)
        a = make_job(size=1, walltime=50.0)
        b = make_job(size=2, walltime=20.0)
        c = make_job(size=2, walltime=9999.0)  # too long, no extra nodes
        candidates = planner.candidates([big, a, b, c], res, now=0.0)
        assert candidates == [a, b]

    def test_no_candidates(self, loaded_cluster):
        planner = BackfillPlanner(loaded_cluster)
        res = planner.reserve(make_job(size=6), now=0.0)
        jobs = [make_job(size=5, walltime=10.0)]  # wider than 2 free nodes
        assert planner.candidates(jobs, res, now=0.0) == []
