"""RPR5xx: profile-guided performance rules.

These whole-program rules guard the simulator's event hot path — the
binding constraint on Cori/Theta-scale training (ROADMAP item 1).  All
of them are **gated by measured hotness**: a function must be reachable
within a few call-graph hops of a profiler anchor scope (see
:mod:`repro.check.hotness`) before any finding fires, so cold-path
style noise never reaches the ratchet baseline.  Without a discoverable
``profile_baseline.json`` the whole family is silent.

Catalog
-------
* RPR501 ``hot-loop-alloc`` — container allocation inside a hot loop.
* RPR502 ``hot-attr-hoist`` — the same attribute chain read repeatedly
  inside one hot loop; hoist it into a local.
* RPR503 ``hot-rebuild`` — a container rebuilt from instance state on
  every call of a hot function.
* RPR504 ``hot-no-slots`` — a class instantiated on the hot path with
  no ``__slots__``.
* RPR505 ``dead-store`` — a store provably never read (liveness over
  the :mod:`repro.check.flow` CFG); reported project-wide.
* RPR506 ``float-accum-order`` — float accumulation over unordered set
  iteration, which breaks bit-identical vectorization.
* RPR507 ``stale-profile-baseline`` — the committed profile baseline
  no longer matches the checker's anchor-scope set, so the gating of
  every other rule here is silently degraded.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.check import flow as _flow
from repro.check.hotness import Hotness, hotness_for_project
from repro.check.project import (
    ProjectFinding,
    ProjectModel,
    ProjectRule,
    register_project,
)

#: a chain must repeat at least this often in one loop to be reported
MIN_CHAIN_REPEATS = 3

#: base-class names (last component) that exempt a class from RPR504
_SLOTS_EXEMPT_BASES = ("Protocol", "Enum", "IntEnum", "StrEnum", "Flag",
                       "IntFlag", "NamedTuple", "TypedDict")


def _dotted_chain(node: ast.expr) -> str | None:
    """``a.b.c`` for a pure Name-rooted attribute chain, else None."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    parts.reverse()
    return ".".join(parts)


def _fn_label(hotness: Hotness, qualname: str) -> str:
    return f"{qualname} (hotness {hotness.score(qualname):.2f})"


@register_project
class HotLoopAllocRule(ProjectRule):
    """Container allocations inside loops of hot functions."""

    id = "RPR501"
    slug = "hot-loop-alloc"
    rationale = (
        "Building a fresh list/dict/set on every iteration of a hot loop "
        "dominates event-path cost in pure Python; preallocate, reuse, or "
        "hoist the container out of the per-event path."
    )

    def check(self, project: ProjectModel) -> Iterator[ProjectFinding]:
        """Yield findings (silent when no profile baseline is present)."""
        hotness = hotness_for_project(project)
        if hotness is None:
            return
        for fi in hotness.hot_functions():
            depths = _flow.loop_depths(fi.node)
            for node, kind in _flow.allocations(fi.node):
                depth = depths.get(node, 0)
                if depth < 1:
                    continue
                yield ProjectFinding(
                    fi.module.path, node.lineno, node.col_offset,
                    f"{kind} at loop depth {depth} of hot function "
                    f"{_fn_label(hotness, fi.qualname)}",
                )


@register_project
class HotAttrHoistRule(ProjectRule):
    """Repeated attribute-chain lookups inside one hot loop."""

    id = "RPR502"
    slug = "hot-attr-hoist"
    rationale = (
        "Re-reading the same attribute chain on every iteration of a hot "
        "loop pays repeated dictionary lookups; bind it to a local before "
        "the loop."
    )

    def check(self, project: ProjectModel) -> Iterator[ProjectFinding]:
        """Yield findings (silent when no profile baseline is present)."""
        hotness = hotness_for_project(project)
        if hotness is None:
            return
        for fi in hotness.hot_functions():
            reported: set[str] = set()
            for loop in ast.walk(fi.node):
                if not isinstance(loop, (ast.For, ast.AsyncFor, ast.While)):
                    continue
                for chain, count in self._repeated_chains(loop):
                    if chain in reported:
                        continue
                    reported.add(chain)
                    yield ProjectFinding(
                        fi.module.path, loop.lineno, loop.col_offset,
                        f"attribute chain '{chain}' read {count}x inside one "
                        f"loop of hot function {_fn_label(hotness, fi.qualname)}"
                        "; hoist it into a local",
                    )

    @staticmethod
    def _repeated_chains(loop: ast.stmt) -> list[tuple[str, int]]:
        scan: list[ast.AST] = list(loop.body)
        if isinstance(loop, ast.While):
            scan.append(loop.test)
        parents: dict[ast.AST, ast.AST] = {}
        rebound: set[str] = set()
        stored_chains: set[str] = set()
        counts: dict[str, int] = {}
        for root in scan:
            for node in ast.walk(root):
                for child in ast.iter_child_nodes(node):
                    parents[child] = node
        if isinstance(loop, (ast.For, ast.AsyncFor)):
            rebound |= _flow._target_names(loop.target)
        for root in scan:
            for node in ast.walk(root):
                if isinstance(node, ast.Name) and isinstance(
                        node.ctx, (ast.Store, ast.Del)):
                    rebound.add(node.id)
                elif isinstance(node, ast.Attribute) and isinstance(
                        node.ctx, (ast.Store, ast.Del)):
                    chain = _dotted_chain(node)
                    if chain is not None:
                        stored_chains.add(chain)
        for root in scan:
            for node in ast.walk(root):
                if not isinstance(node, ast.Attribute) or not isinstance(
                        node.ctx, ast.Load):
                    continue
                parent = parents.get(node)
                if isinstance(parent, ast.Attribute) and parent.value is node:
                    continue  # inner link of a longer chain
                if isinstance(parent, ast.Call) and parent.func is node:
                    # a method call re-reads only the receiver chain
                    node = node.value
                    if not isinstance(node, ast.Attribute):
                        continue
                chain = _dotted_chain(node)
                if chain is None:
                    continue
                counts[chain] = counts.get(chain, 0) + 1
        repeated: list[tuple[str, int]] = []
        for chain, count in sorted(counts.items()):
            if count < MIN_CHAIN_REPEATS:
                continue
            root_name = chain.split(".", 1)[0]
            if root_name in rebound:
                continue
            prefixes = chain.split(".")
            if any(".".join(prefixes[:i]) in stored_chains
                   for i in range(2, len(prefixes) + 1)):
                continue
            repeated.append((chain, count))
        return repeated


@register_project
class HotRebuildRule(ProjectRule):
    """Containers rebuilt from instance state on every hot call."""

    id = "RPR503"
    slug = "hot-rebuild"
    rationale = (
        "list(self._x)/dict(self._y) copies the whole container on every "
        "call of a hot function; return a read-only view, cache the copy, "
        "or restructure the caller."
    )

    def check(self, project: ProjectModel) -> Iterator[ProjectFinding]:
        """Yield findings (silent when no profile baseline is present)."""
        hotness = hotness_for_project(project)
        if hotness is None:
            return
        for fi in hotness.hot_functions():
            for node in ast.walk(fi.node):
                if not (isinstance(node, ast.Call)
                        and isinstance(node.func, ast.Name)
                        and node.func.id in ("list", "dict", "set", "tuple")
                        and len(node.args) == 1 and not node.keywords):
                    continue
                chain = _dotted_chain(node.args[0])
                if chain is None or "." not in chain:
                    continue
                yield ProjectFinding(
                    fi.module.path, node.lineno, node.col_offset,
                    f"{node.func.id}({chain}) rebuilds a container on every "
                    f"call of hot function {_fn_label(hotness, fi.qualname)}",
                )


def _has_slots(cls: ast.ClassDef) -> bool:
    for item in cls.body:
        if isinstance(item, ast.Assign):
            if any(isinstance(t, ast.Name) and t.id == "__slots__"
                   for t in item.targets):
                return True
        elif isinstance(item, ast.AnnAssign):
            if isinstance(item.target, ast.Name) and item.target.id == "__slots__":
                return True
    for dec in cls.decorator_list:
        if isinstance(dec, ast.Call):
            for kw in dec.keywords:
                if kw.arg == "slots" and isinstance(kw.value, ast.Constant) \
                        and kw.value.value is True:
                    return True
    return False


@register_project
class HotNoSlotsRule(ProjectRule):
    """Hot-path classes without ``__slots__``."""

    id = "RPR504"
    slug = "hot-no-slots"
    rationale = (
        "Every instance of a __dict__-bearing class allocated on the event "
        "path costs an extra dict; __slots__ (or dataclass(slots=True)) "
        "removes it."
    )

    def check(self, project: ProjectModel) -> Iterator[ProjectFinding]:
        """Yield findings (silent when no profile baseline is present)."""
        hotness = hotness_for_project(project)
        if hotness is None:
            return
        instantiated_by: dict[str, str] = {}
        for fi in hotness.hot_functions():
            for cls_qual in hotness.graph.instantiated.get(fi.qualname, ()):
                instantiated_by.setdefault(cls_qual, fi.qualname)
        for cls_qual in sorted(instantiated_by):
            entry = project.class_def(cls_qual)
            if entry is None:
                continue
            info, cls = entry
            if _has_slots(cls) or self._exempt(cls):
                continue
            yield ProjectFinding(
                info.path, cls.lineno, cls.col_offset,
                f"class {cls_qual} is instantiated in hot function "
                f"{_fn_label(hotness, instantiated_by[cls_qual])} but "
                "defines no __slots__",
            )

    @staticmethod
    def _exempt(cls: ast.ClassDef) -> bool:
        for base in cls.bases:
            name = base.attr if isinstance(base, ast.Attribute) else \
                base.id if isinstance(base, ast.Name) else ""
            if name.endswith(("Error", "Exception", "Warning")) \
                    or name in _SLOTS_EXEMPT_BASES:
                return True
        return False


@register_project
class DeadStoreRule(ProjectRule):
    """Stores whose value is provably never read (project-wide)."""

    id = "RPR505"
    slug = "dead-store"
    rationale = (
        "A store that no path ever reads is wasted work and usually a "
        "logic bug (a result computed and dropped); delete it or use the "
        "value."
    )

    def check(self, project: ProjectModel) -> Iterator[ProjectFinding]:
        """Yield findings (silent when no profile baseline is present)."""
        hotness = hotness_for_project(project)
        if hotness is None:
            return
        for qual in sorted(hotness.index):
            fi = hotness.index[qual]
            try:
                dead = _flow.FunctionFlow(fi.node).dead_stores()
            except RecursionError:  # pragma: no cover - pathological nesting
                continue
            for store in dead:
                yield ProjectFinding(
                    fi.module.path, store.lineno, store.col,
                    f"dead store: '{store.name}' in {qual} is assigned but "
                    "never read",
                )


def _is_set_expr(node: ast.expr) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        func = node.func
        if isinstance(func, ast.Name) and func.id in ("set", "frozenset"):
            return True
        if isinstance(func, ast.Attribute) and func.attr in (
                "intersection", "union", "difference",
                "symmetric_difference"):
            return True
    return False


@register_project
class FloatAccumOrderRule(ProjectRule):
    """Order-sensitive float accumulation over unordered sets."""

    id = "RPR506"
    slug = "float-accum-order"
    rationale = (
        "Summing floats while iterating a set depends on hash order, so "
        "results are not bit-identical across runs or after vectorization; "
        "accumulate over a sorted or insertion-ordered container."
    )

    _ACCUM_OPS = (ast.Add, ast.Sub, ast.Mult)

    def check(self, project: ProjectModel) -> Iterator[ProjectFinding]:
        """Yield findings (silent when no profile baseline is present)."""
        hotness = hotness_for_project(project)
        if hotness is None:
            return
        for fi in hotness.hot_functions():
            label = _fn_label(hotness, fi.qualname)
            for node in ast.walk(fi.node):
                if isinstance(node, (ast.For, ast.AsyncFor)) \
                        and _is_set_expr(node.iter):
                    for sub in ast.walk(node):
                        if isinstance(sub, ast.AugAssign) \
                                and isinstance(sub.op, self._ACCUM_OPS):
                            yield ProjectFinding(
                                fi.module.path, sub.lineno, sub.col_offset,
                                "float accumulation over unordered set "
                                f"iteration in hot function {label}",
                            )
                elif (isinstance(node, ast.Call)
                      and isinstance(node.func, ast.Name)
                      and node.func.id == "sum" and node.args
                      and isinstance(node.args[0],
                                     (ast.GeneratorExp, ast.ListComp))
                      and node.args[0].generators
                      and _is_set_expr(node.args[0].generators[0].iter)):
                    yield ProjectFinding(
                        fi.module.path, node.lineno, node.col_offset,
                        "sum() over unordered set iteration in hot "
                        f"function {label}",
                    )


@register_project
class StaleProfileBaselineRule(ProjectRule):
    """Profile baselines drifted out of sync with the anchor scopes."""

    id = "RPR507"
    slug = "stale-profile-baseline"
    rationale = (
        "A profile baseline generated for a different anchor-scope set "
        "silently mis-gates every RPR5xx rule (hot functions go "
        "unchecked, cold ones get noise); regenerate it with "
        "`repro bench --emit-profile`."
    )

    def check(self, project: ProjectModel) -> Iterator[ProjectFinding]:
        """Yield staleness findings (silent without a baseline, and for
        pre-provenance baselines whose scope set cannot be verified)."""
        hotness = hotness_for_project(project)
        if hotness is None:
            return
        path = hotness.baseline_path or "profile_baseline.json"
        for message in hotness.stale_anchors():
            yield ProjectFinding(path, 1, 0, message)
